"""The versioned on-disk prepared-collection store: reuse and invalidation.

Two contracts are enforced here.  *Reuse*: a warm artifact reproduces the
serial join pair-for-pair — through the plain engine, through a slim
process ``ShardPlan``, and through worker-side signing — with the persisted
signature cache making warm signing a hit.  *Invalidation*: any change to
the corpus, the measure configuration, either knowledge source, or the
on-disk format version must force re-preparation; no manipulation of the
artifact files (rename, truncation, corruption, version edits) may ever
surface stale prepared state.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro import SynonymRuleSet, Taxonomy
from repro.core.measures import MeasureConfig
from repro.datasets import TINY_PROFILE, generate_dataset
from repro.join import PebbleJoin, UnifiedJoin
from repro.records import RecordCollection
from repro.store import FORMAT_VERSION, PreparedStore, collection_fingerprint

THETA = 0.55
TAU = 2


@pytest.fixture(scope="module")
def store_dataset():
    return generate_dataset(TINY_PROFILE, seed=83)


def _config(dataset, codes="TJS", q=3):
    return MeasureConfig.from_codes(
        codes, rules=dataset.rules, taxonomy=dataset.taxonomy, q=q
    )


def _triples(pairs):
    return [(pair.left_id, pair.right_id, pair.similarity) for pair in pairs]


def _edited(collection: RecordCollection) -> RecordCollection:
    """The same corpus with one record's text changed."""
    texts = collection.texts()
    texts[1] = texts[1] + " edited"
    return RecordCollection.from_strings(texts)


class TestFingerprint:
    def test_stable_and_content_sensitive(self, store_dataset):
        collection = store_dataset.records.head(10)
        config = _config(store_dataset)
        base = collection_fingerprint(collection, config)
        # Deterministic, and identical for a prepared wrapper of the corpus.
        assert base == collection_fingerprint(collection, config)
        prepared = PebbleJoin(config, THETA).prepare(collection)
        assert base == collection_fingerprint(prepared, config)
        # Every content axis moves the fingerprint.
        assert base != collection_fingerprint(_edited(collection), config)
        assert base != collection_fingerprint(collection.head(9), config)
        assert base != collection_fingerprint(collection, _config(store_dataset, "TJ"))
        assert base != collection_fingerprint(collection, _config(store_dataset, q=4))
        other_rules = SynonymRuleSet.from_pairs([("coffee shop", "cafe")])
        assert base != collection_fingerprint(
            collection,
            MeasureConfig.from_codes(
                "TJS", rules=other_rules, taxonomy=store_dataset.taxonomy, q=3
            ),
        )

    def test_equal_content_from_distinct_objects(self, store_dataset):
        collection = store_dataset.records.head(8)
        config = _config(store_dataset)
        # A config rebuilt from equal knowledge sources (the pickle
        # round-trip every worker performs) fingerprints identically.
        clone = pickle.loads(pickle.dumps(config))
        assert clone is not config and clone == config
        assert collection_fingerprint(collection, clone) == collection_fingerprint(
            collection, config
        )


class TestStoreReuse:
    def test_round_trip_joins_identically(self, store_dataset, tmp_path):
        collection = store_dataset.records.head(30)
        config = _config(store_dataset)
        reference = PebbleJoin(config, THETA, tau=TAU).join(collection)

        store = PreparedStore(tmp_path)
        prepared = store.prepare(collection, config)
        assert store.last_outcome is not None and not store.last_outcome.hit
        cold = PebbleJoin(config, THETA, tau=TAU).join(prepared)
        assert _triples(cold.pairs) == _triples(reference.pairs)
        store.save(prepared)  # persist the join's signatures and graph sides

        warm_store = PreparedStore(tmp_path)
        loaded = warm_store.prepare(collection, config)
        assert warm_store.last_outcome.hit
        # Signing against the persisted order is a cache hit, not a re-sign.
        assert loaded.cached_signature_count == prepared.cached_signature_count
        warm = PebbleJoin(config, THETA, tau=TAU).join(loaded)
        assert _triples(warm.pairs) == _triples(reference.pairs)
        assert warm.statistics.signing_seconds < cold.statistics.signing_seconds

    def test_store_round_trip_through_slim_plan_and_worker_signing(
        self, store_dataset, tmp_path
    ):
        """Tier-1 smoke: store → slim ShardPlan → process join ≡ serial.

        One preparation round-trips through the on-disk store and is then
        driven through both process paths — the slim parent-signed plan and
        worker-side signing — asserting pair-for-pair identity with the
        serial reference (ids and similarities).
        """
        collection = store_dataset.records.head(24)
        config = _config(store_dataset)
        reference = PebbleJoin(config, THETA, tau=TAU).join(collection)

        store = PreparedStore(tmp_path)
        prepared = store.prepare(collection, config)
        PebbleJoin(config, THETA, tau=TAU).join(prepared)  # warm the caches
        store.save(prepared)
        loaded = PreparedStore(tmp_path).prepare(collection, config)

        slim = PebbleJoin(config, THETA, tau=TAU).join(
            loaded, executor="process", workers=2
        )
        assert _triples(slim.pairs) == _triples(reference.pairs)
        worker_signed = PebbleJoin(config, THETA, tau=TAU).join(
            loaded, executor="process", workers=2, sign_in_workers=True
        )
        assert _triples(worker_signed.pairs) == _triples(reference.pairs)

    def test_unified_join_auto_persists_signatures(self, store_dataset, tmp_path):
        collection = store_dataset.records.head(25)
        kwargs = dict(
            rules=store_dataset.rules,
            taxonomy=store_dataset.taxonomy,
            theta=THETA,
            tau=TAU,
        )
        reference = UnifiedJoin(**kwargs).join(collection)

        cold_store = PreparedStore(tmp_path)
        cold = UnifiedJoin(**kwargs, store=cold_store).join(collection)
        assert _triples(cold.pairs) == _triples(reference.pairs)
        assert not cold_store.last_outcome.hit

        warm_store = PreparedStore(tmp_path)
        warm_join = UnifiedJoin(**kwargs, store=warm_store)
        warm = warm_join.join(collection)
        assert warm_store.last_outcome.hit
        assert _triples(warm.pairs) == _triples(reference.pairs)
        # The persisted artifact carried the cold join's signing: the warm
        # run's signing stage is a cache hit.
        assert warm.statistics.signing_seconds < cold.statistics.signing_seconds

    def test_prepare_sourced_sides_persist_back_after_join(
        self, store_dataset, tmp_path
    ):
        """A side obtained from the facade's own store-backed prepare() must
        get the same persist-back as a raw side (a caller-built preparation
        must not)."""
        collection = store_dataset.records.head(20)
        kwargs = dict(
            rules=store_dataset.rules,
            taxonomy=store_dataset.taxonomy,
            theta=THETA,
            tau=TAU,
        )
        store = PreparedStore(tmp_path)
        join = UnifiedJoin(**kwargs, store=store)
        prepared = join.prepare(collection)
        join.join(prepared)
        # The join's signing was persisted: a fresh store sees it.
        loaded = PreparedStore(tmp_path).load(collection, join.config)
        assert loaded is not None and loaded.cached_signature_count >= 1
        # A preparation built outside the store is never auto-persisted.
        foreign_dir = tmp_path / "foreign"
        foreign_store = PreparedStore(foreign_dir)
        foreign_join = UnifiedJoin(**kwargs, store=foreign_store)
        outside = PebbleJoin(foreign_join.config, THETA, tau=TAU).prepare(collection)
        foreign_join.join(outside)
        assert list(foreign_store.root.iterdir()) == []

    def test_two_collection_warm_runs_sign_from_cache_without_growth(
        self, store_dataset, tmp_path
    ):
        """Shared orders never persist (weakref-cached), but a warm run's
        rebuilt order is content-equal to the persisted signing's: signing
        must be a cache hit and the artifacts must stop growing."""
        records = store_dataset.records.head(30)
        left = records.subset(range(0, 15))
        right = records.subset(range(15, 30))
        kwargs = dict(
            rules=store_dataset.rules,
            taxonomy=store_dataset.taxonomy,
            theta=THETA,
            tau=TAU,
        )
        reference = UnifiedJoin(**kwargs).join(left, right)
        sizes, signing_seconds = [], []
        for _ in range(3):
            store = PreparedStore(tmp_path)
            result = UnifiedJoin(**kwargs, store=store).join(left, right)
            assert _triples(result.pairs) == _triples(reference.pairs)
            sizes.append(sum(p.stat().st_size for p in store.root.iterdir()))
            signing_seconds.append(result.statistics.signing_seconds)
        assert sizes[1] == sizes[2], "warm runs must not grow the artifacts"
        assert signing_seconds[2] < max(signing_seconds[0] / 10, 1e-3)

    def test_content_equal_order_serves_cached_signing(self, store_dataset):
        """PreparedCollection.signed must reuse a signing made under a
        distinct but content-equal order, without growing its cache."""
        from repro.join import build_shared_order

        config = _config(store_dataset)
        engine = PebbleJoin(config, THETA, tau=TAU)
        records = store_dataset.records.head(20)
        left_prep = engine.prepare(records.subset(range(0, 10)))
        right_prep = engine.prepare(records.subset(range(10, 20)))
        order_a = build_shared_order([left_prep, right_prep])
        order_b = build_shared_order([left_prep, right_prep])
        assert order_a is not order_b and order_a.content_equal(order_b)
        signed_a = left_prep.signed(order_a, THETA, TAU, engine.method)
        assert left_prep.signed(order_b, THETA, TAU, engine.method) is signed_a
        assert left_prep.cached_signature_count == 1
        # A genuinely different order still re-signs.
        order_b.add_record_pebbles(
            right_prep.prepared_records[0].pebbles
        )
        assert not order_a.content_equal(order_b)
        resigned = left_prep.signed(order_b, THETA, TAU, engine.method)
        assert resigned is not signed_a
        assert left_prep.cached_signature_count == 2

    def test_unified_join_batches_persist_after_stream(self, store_dataset, tmp_path):
        collection = store_dataset.records.head(25)
        kwargs = dict(
            rules=store_dataset.rules,
            taxonomy=store_dataset.taxonomy,
            theta=THETA,
            tau=TAU,
        )
        serial = list(UnifiedJoin(**kwargs).join_batches(collection, batch_size=6))
        store = PreparedStore(tmp_path)
        streamed = list(
            UnifiedJoin(**kwargs, store=store).join_batches(collection, batch_size=6)
        )
        assert [_triples(b.pairs) for b in streamed] == [
            _triples(b.pairs) for b in serial
        ]
        # The stream's exhaustion persisted the signed preparation: a fresh
        # store sees an artifact that already carries the signing.
        warm_store = PreparedStore(tmp_path)
        loaded = warm_store.load(collection, UnifiedJoin(**kwargs).config)
        assert loaded is not None
        assert loaded.cached_signature_count >= 1
        warm = UnifiedJoin(**kwargs, store=warm_store).join(collection)
        assert warm_store.last_outcome.hit
        assert _triples(warm.pairs) == [
            triple for batch in serial for triple in _triples(batch.pairs)
        ]


class TestStoreInvalidation:
    def _store_with_artifact(self, dataset, tmp_path, collection=None, config=None):
        collection = (
            dataset.records.head(15) if collection is None else collection
        )
        config = _config(dataset) if config is None else config
        store = PreparedStore(tmp_path)
        store.prepare(collection, config)
        return store, collection, config

    def test_config_change_forces_repreparation(self, store_dataset, tmp_path):
        store, collection, config = self._store_with_artifact(store_dataset, tmp_path)
        assert store.load(collection, config) is not None
        assert store.load(collection, _config(store_dataset, "TJ")) is None
        assert store.load(collection, _config(store_dataset, q=4)) is None

    def test_corpus_edit_forces_repreparation(self, store_dataset, tmp_path):
        store, collection, config = self._store_with_artifact(store_dataset, tmp_path)
        assert store.load(_edited(collection), config) is None
        assert store.load(collection.head(14), config) is None

    def test_rule_set_change_forces_repreparation(self, store_dataset, tmp_path):
        store, collection, config = self._store_with_artifact(store_dataset, tmp_path)
        grown = SynonymRuleSet(store_dataset.rules.rules)
        grown.add_text_rule("cake", "gateau")
        changed = MeasureConfig.from_codes(
            "TJS", rules=grown, taxonomy=store_dataset.taxonomy, q=3
        )
        assert store.load(collection, changed) is None

    def test_taxonomy_change_forces_repreparation(self, store_dataset, tmp_path):
        store, collection, config = self._store_with_artifact(store_dataset, tmp_path)
        other_tax = Taxonomy("root")
        other_tax.add_node("food", other_tax.root)
        changed = MeasureConfig.from_codes(
            "TJS", rules=store_dataset.rules, taxonomy=other_tax, q=3
        )
        assert store.load(collection, changed) is None

    def test_format_version_bump_forces_repreparation(self, store_dataset, tmp_path):
        store, collection, config = self._store_with_artifact(store_dataset, tmp_path)
        bumped = PreparedStore(tmp_path, format_version=FORMAT_VERSION + 1)
        assert bumped.load(collection, config) is None
        bumped.prepare(collection, config)
        assert not bumped.last_outcome.hit
        # Both versions now coexist; each store only sees its own format.
        assert store.load(collection, config) is not None
        assert bumped.load(collection, config) is not None

    def test_renamed_artifact_is_rejected(self, store_dataset, tmp_path):
        """Stale-artifact reuse by file manipulation must be impossible."""
        store, collection, config = self._store_with_artifact(store_dataset, tmp_path)
        # Write a second corpus's artifact, then overwrite it with the first
        # corpus's file (simulating a mixed-up sync or a copied cache dir).
        other = _edited(collection)
        store.prepare(other, config)
        source = store.path_for(collection_fingerprint(collection, config))
        target = store.path_for(collection_fingerprint(other, config))
        os.replace(source, target)
        # The header fingerprint no longer matches the requested content.
        assert store.load(other, config) is None
        # A re-prepare heals the slot.
        store.prepare(other, config)
        assert store.last_outcome is not None and not store.last_outcome.hit
        assert store.load(other, config) is not None

    def test_corrupt_or_tampered_artifact_is_rejected(self, store_dataset, tmp_path):
        store, collection, config = self._store_with_artifact(store_dataset, tmp_path)
        path = store.path_for(collection_fingerprint(collection, config))
        blob = path.read_bytes()
        # Truncated payload.
        path.write_bytes(blob[: len(blob) // 2])
        assert store.load(collection, config) is None
        # Header edited to a future format version (filename kept).
        header_end = blob.find(b"\n") + 1
        future = blob[:header_end].replace(b" v1 ", b" v9 ") + blob[header_end:]
        path.write_bytes(future)
        assert store.load(collection, config) is None
        # Garbage header.
        path.write_bytes(b"not-an-artifact\n" + blob[header_end:])
        assert store.load(collection, config) is None

    def test_prepare_rejects_prepared_input(self, store_dataset, tmp_path):
        store = PreparedStore(tmp_path)
        config = _config(store_dataset)
        prepared = PebbleJoin(config, THETA).prepare(store_dataset.records.head(5))
        with pytest.raises(TypeError):
            store.prepare(prepared, config)
