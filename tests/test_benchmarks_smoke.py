"""Tier-1 smoke runs of the benchmark harnesses at tiny sizes.

The full-scale figure reproductions live under ``benchmarks/`` and only run
with pytest-benchmark; these smoke tests import the same ``run_*`` drivers
and execute them on a small synthetic corpus so regressions in the harness
code surface in the regular test suite.  Deselect with ``-m "not
benchmarks"``.
"""

import sys
from pathlib import Path

import pytest

from repro.datasets import MED_PROFILE, generate_dataset
from repro.join.signatures import SignatureMethod

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS_DIR))

import bench_fig4_join_time  # noqa: E402
import bench_fig7_scalability  # noqa: E402
import bench_parallel_scaling  # noqa: E402
import bench_search_latency  # noqa: E402
import bench_store_reuse  # noqa: E402
import bench_table10_breakdown  # noqa: E402

pytestmark = pytest.mark.benchmarks


@pytest.fixture(scope="module")
def smoke_dataset():
    """A miniature MED-like corpus (same generator as the benchmark suite)."""
    return generate_dataset(MED_PROFILE, count=80, seed=42)


def test_fig4_harness_smoke(smoke_dataset):
    results = bench_fig4_join_time.run_fig4(
        smoke_dataset, side=20, thetas=(0.85,), tau=2
    )
    for method in SignatureMethod.ALL:
        assert 0.85 in results[method]
    # All filters must verify the same result set.
    reference = results[SignatureMethod.U_FILTER][0.85].pair_ids()
    assert results[SignatureMethod.AU_DP][0.85].pair_ids() == reference
    assert results[SignatureMethod.AU_HEURISTIC][0.85].pair_ids() == reference


def test_fig4_selfjoin_filter_harness_smoke(smoke_dataset):
    outcome = bench_fig4_join_time.run_selfjoin_filter_comparison(
        smoke_dataset, side=40, theta=0.85, tau=2, repeats=1
    )
    # At smoke scale only the equivalence contract is asserted; the ≥2x
    # speedup assertion runs at full size in benchmarks/.
    assert outcome["candidates_match"]
    assert outcome["processed_match"]
    assert outcome["candidates"] > 0


def test_verification_breakdown_harness_smoke(smoke_dataset, tmp_path):
    out_path = tmp_path / "BENCH_verification.json"
    suite = bench_table10_breakdown.run_verification_breakdown_suite(
        smoke_dataset, side=40, thetas=(0.85, 0.7), tau=2, out_path=out_path
    )
    assert len(suite["runs"]) == 2
    for outcome in suite["runs"]:
        # The engine must be a pure optimization at any scale; the ≥2x
        # speedup assertion runs at full size in benchmarks/.
        assert outcome["results_match"]
        assert outcome["candidates"] > 0
        # Every candidate is either pruned by the bound or graph-verified.
        rates = outcome["bound_hit_rates"]
        assert abs(rates["upper_bound_prunes"] + rates["graphs_built"] - 1.0) < 1e-9
    import json

    recorded = json.loads(out_path.read_text())
    assert [run["candidates"] for run in recorded["runs"]] == [
        run["candidates"] for run in suite["runs"]
    ]
    assert set(recorded["runs"][0]["bound_hit_rates"]) == {
        "lower_bound_skips",
        "upper_bound_prunes",
        "graphs_built",
        "ceiling_stops",
        "full_runs",
    }


def test_parallel_scaling_harness_smoke(smoke_dataset, tmp_path):
    out_path = tmp_path / "BENCH_parallel.json"
    payload = bench_parallel_scaling.run_parallel_scaling(
        smoke_dataset,
        side=40,
        worker_counts=(1, 2),
        kernel_records=60,
        out_path=out_path,
    )
    # At smoke scale only the equivalence contract is asserted; the ≥2x
    # speedup bar runs at full size in benchmarks/ (and needs real cores).
    assert payload["candidates"] > 0
    assert {run["executor"] for run in payload["runs"]} == {
        "thread",
        "process",
        "process-shm",
        "process-warm",
        "process-worker-signed",
    }
    assert all(run["results_match"] for run in payload["runs"])
    # The slim plan must beat the full payload even at smoke scale (the
    # ≥40% bar is asserted at full size in benchmarks/), the per-plan
    # key table may only ever shrink the slim plan further, and the flat
    # integer plan must undercut the slim views it replaced.
    sizes = payload["payload"]
    assert sizes["slim_bytes"] < sizes["full_bytes"]
    assert sizes["worker_signed_bytes"] < sizes["full_bytes"]
    assert sizes["slim_bytes"] <= sizes["slim_uninterned_bytes"]
    assert sizes["flat_bytes"] < sizes["slim_bytes"]
    assert sizes["shm_segment_bytes"] > 0
    import json

    recorded = json.loads(out_path.read_text())
    assert recorded["cpu_count"] >= 1
    assert [run["workers"] for run in recorded["runs"]] == [1, 2] * 5
    assert recorded["payload"]["slim_reduction"] > 0.0
    assert recorded["payload"]["intern_reduction"] >= 0.0
    assert recorded["payload"]["flat_reduction_vs_slim"] > 0.0
    # The fault-tolerance blocks: the supervised no-fault run stayed
    # bit-identical (asserted inside the harness) and the injected
    # worker-kill run recovered to the same answer with ≥1 respawn.
    assert recorded["supervision"]["supervised_seconds"] > 0.0
    assert recorded["supervision"]["unsupervised_seconds"] > 0.0
    assert recorded["recovery"]["results_match"]
    assert recorded["recovery"]["respawns"] >= 1
    assert recorded["recovery"]["respawn_seconds"] >= 0.0
    # The filter-kernel block: equivalence is unconditional at any scale
    # (the ≥3x numpy speedup bar runs at full size in benchmarks/, where
    # the corpus is big enough to amortize per-probe dispatch overhead).
    for comparison in recorded["filter_kernel"].values():
        assert comparison["kernels"]["python"]["candidates"] > 0
        assert all(
            row["results_match"] for row in comparison["kernels"].values()
        )


def test_store_reuse_harness_smoke(smoke_dataset, tmp_path):
    out_path = tmp_path / "BENCH_store.json"
    payload = bench_store_reuse.run_store_reuse(
        smoke_dataset, side=40, store_root=tmp_path / "store", out_path=out_path
    )
    assert payload["results_match"]
    assert payload["warm"]["store_hit"]
    # The warm run loaded its preparation and signed from the persisted
    # cache: its signing stage must be vanishing next to the cold one's.
    assert payload["warm"]["signing_seconds"] <= max(
        payload["cold"]["signing_seconds"] / 10, 1e-3
    )
    assert payload["artifact_bytes"] > 0
    import json

    recorded = json.loads(out_path.read_text())
    assert recorded["results"] == payload["results"]


def test_search_latency_harness_smoke(smoke_dataset, tmp_path):
    out_path = tmp_path / "BENCH_search.json"
    payload = bench_search_latency.run_search_latency(
        smoke_dataset,
        side=40,
        probes=8,
        per_request_probes=2,
        store_root=tmp_path / "store",
        out_path=out_path,
    )
    # Identity is the unconditional contract; the ≥10x serving bar and the
    # warm<cold build comparison are asserted at full size in benchmarks/.
    # At smoke scale both builds are tens of milliseconds, where scheduler
    # noise under a concurrently running suite can flip a strict wall-clock
    # comparison — so only a generous ratio is checked here.
    assert payload["results_match"]
    assert payload["speedup_vs_per_request_join"] > 1.0
    assert payload["build"]["warm_from_store_seconds"] < max(
        payload["build"]["cold_seconds"] * 2, 0.05
    )
    import json

    recorded = json.loads(out_path.read_text())
    assert recorded["query"]["samples"] == 8
    assert recorded["query_topk"]["k"] == bench_search_latency.TOPK
    # Corpus-document probes guarantee a full heap, so the bound-based
    # early stop must prune even at smoke scale.
    assert recorded["query_topk"]["bound_skipped_total"] > 0


def test_fig7_harness_smoke(smoke_dataset):
    results = bench_fig7_scalability.run_fig7(
        smoke_dataset, sizes=(10, 20), theta=0.9, tau=2
    )
    for method in SignatureMethod.ALL:
        assert set(results[method]) == {10, 20}


def test_fig7_batched_harness_smoke(smoke_dataset):
    outcome = bench_fig7_scalability.run_batched_consistency(
        smoke_dataset, size=20, tau=2, batch_size=4
    )
    assert outcome["matches"]
    assert outcome["batches"] > 1
