"""Tests for tokenisation, normalisation, and token spans."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tokenizer import TokenSpan, Tokenizer, join_tokens, normalize_text


class TestNormalizeText:
    def test_collapses_whitespace(self):
        assert normalize_text("a   b\t c\n d") == "a b c d"

    def test_lowercases_by_default(self):
        assert normalize_text("Coffee Shop") == "coffee shop"

    def test_lowercase_can_be_disabled(self):
        assert normalize_text("Coffee Shop", lowercase=False) == "Coffee Shop"

    def test_strip_punctuation(self):
        assert normalize_text("coffee, shop!", strip_punctuation=True) == "coffee shop"

    def test_empty_string(self):
        assert normalize_text("") == ""

    def test_whitespace_only(self):
        assert normalize_text("   \t\n") == ""


class TestTokenizer:
    def test_basic_split(self):
        assert Tokenizer().tokenize("coffee shop latte") == ["coffee", "shop", "latte"]

    def test_empty_input_gives_no_tokens(self):
        assert Tokenizer().tokenize("") == []
        assert Tokenizer().tokenize("    ") == []

    def test_canonical_roundtrip(self):
        tok = Tokenizer()
        assert tok.canonical("  Coffee   SHOP ") == "coffee shop"

    def test_tokenize_all(self):
        tok = Tokenizer()
        assert tok.tokenize_all(["a b", "c"]) == [["a", "b"], ["c"]]

    def test_custom_delimiter(self):
        tok = Tokenizer(delimiter=r"[,\s]+")
        assert tok.tokenize("a, b,c") == ["a", "b", "c"]

    @given(st.text())
    def test_tokens_never_contain_whitespace(self, text):
        for token in Tokenizer().tokenize(text):
            assert token == token.strip()
            assert " " not in token

    @given(st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6), min_size=1, max_size=8))
    def test_join_then_tokenize_is_identity(self, tokens):
        tok = Tokenizer()
        assert tok.tokenize(join_tokens(tokens)) == tokens


class TestTokenSpan:
    def test_length(self):
        assert len(TokenSpan(1, 4)) == 3

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            TokenSpan(3, 2)
        with pytest.raises(ValueError):
            TokenSpan(-1, 2)

    def test_overlap_detection(self):
        assert TokenSpan(0, 2).overlaps(TokenSpan(1, 3))
        assert not TokenSpan(0, 2).overlaps(TokenSpan(2, 4))

    def test_contains(self):
        span = TokenSpan(2, 5)
        assert span.contains(2)
        assert span.contains(4)
        assert not span.contains(5)

    def test_slice(self):
        assert TokenSpan(1, 3).slice(["a", "b", "c", "d"]) == ("b", "c")

    @given(
        st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=10), st.integers(min_value=0, max_value=10),
    )
    def test_overlap_is_symmetric(self, a, b, c, d):
        first = TokenSpan(min(a, b), max(a, b))
        second = TokenSpan(min(c, d), max(c, d))
        assert first.overlaps(second) == second.overlaps(first)
