"""Tests for the inverted index and the filter-and-verify join engines."""

import pytest

from repro.core.measures import MeasureConfig
from repro.evaluation.experiments import config_for
from repro.join import (
    InvertedIndex,
    PebbleJoin,
    SignatureMethod,
    UFilterJoin,
    UnifiedJoin,
    UnifiedVerifier,
)
from repro.join.verification import Verifier
from repro.records import RecordCollection


class TestInvertedIndex:
    def test_build_and_lookup(self, figure1_config, poi_collections):
        left, _ = poi_collections
        engine = PebbleJoin(figure1_config, 0.7)
        order = engine.build_order(left)
        signed = engine.sign_collection(left, order)
        index = InvertedIndex.build(signed)
        assert index.record_count == len(left)
        assert len(index) > 0
        any_key = next(iter(index.keys()))
        assert len(index.postings(any_key)) >= 1

    def test_common_keys_symmetric(self, figure1_config, poi_collections):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7)
        order = engine.build_order(left, right)
        left_index = InvertedIndex.build(engine.sign_collection(left, order))
        right_index = InvertedIndex.build(engine.sign_collection(right, order))
        assert left_index.common_keys(right_index) == right_index.common_keys(left_index)

    def test_contains_and_total_postings(self, figure1_config, poi_collections):
        left, _ = poi_collections
        engine = PebbleJoin(figure1_config, 0.7)
        order = engine.build_order(left)
        index = InvertedIndex.build(engine.sign_collection(left, order))
        assert index.total_postings >= len(index)
        missing = ("J", "zzzzzz")
        assert missing not in index
        assert index.postings(missing) == ()


class TestPebbleJoinEndToEnd:
    @pytest.mark.parametrize("method", SignatureMethod.ALL)
    def test_poi_join_finds_expected_pairs(self, figure1_config, poi_collections, method):
        left, right = poi_collections
        tau = 1 if method == SignatureMethod.U_FILTER else 2
        engine = PebbleJoin(figure1_config, 0.7, tau=tau, method=method)
        result = engine.join(left, right)
        found = result.pair_ids()
        # coffee shop latte Helsingki <-> espresso cafe Helsinki
        assert (0, 0) in found
        # pizza place new york <-> pizza place ny (synonym ny -> new york)
        assert (1, 1) in found
        # unrelated POIs must not match
        assert (2, 2) not in found

    def test_verified_similarities_meet_threshold(self, figure1_config, poi_collections):
        left, right = poi_collections
        result = PebbleJoin(figure1_config, 0.7, tau=1).join(left, right)
        for pair in result.pairs:
            assert pair.similarity >= 0.7

    def test_statistics_are_populated(self, figure1_config, poi_collections):
        left, right = poi_collections
        result = PebbleJoin(figure1_config, 0.7, tau=2).join(left, right)
        stats = result.statistics
        assert stats.left_records == len(left)
        assert stats.right_records == len(right)
        assert stats.candidate_count >= len(result)
        assert stats.processed_pairs >= stats.candidate_count
        assert stats.avg_signature_length_left > 0
        assert stats.total_seconds > 0

    def test_self_join_excludes_self_pairs(self, figure1_config):
        collection = RecordCollection.from_strings(
            ["coffee shop", "cafe", "coffee shop", "museum"]
        )
        result = PebbleJoin(figure1_config, 0.9, tau=1).self_join(collection)
        for pair in result.pairs:
            assert pair.left_id < pair.right_id
        assert (0, 2) in result.pair_ids()  # identical strings
        assert (0, 1) in result.pair_ids()  # synonym pair

    def test_higher_threshold_returns_subset(self, figure1_config, poi_collections):
        left, right = poi_collections
        low = PebbleJoin(figure1_config, 0.6, tau=1).join(left, right).pair_ids()
        high = PebbleJoin(figure1_config, 0.9, tau=1).join(left, right).pair_ids()
        assert high.issubset(low)

    def test_invalid_parameters(self, figure1_config):
        with pytest.raises(ValueError):
            PebbleJoin(figure1_config, 1.5)
        with pytest.raises(ValueError):
            PebbleJoin(figure1_config, 0.8, tau=0)
        with pytest.raises(ValueError):
            PebbleJoin(figure1_config, 0.8, method="magic")
        # U-Filter implies tau=1: a conflicting larger tau is rejected, not
        # silently clamped.
        with pytest.raises(ValueError):
            PebbleJoin(figure1_config, 0.8, tau=2, method=SignatureMethod.U_FILTER)

    def test_ufilter_join_class(self, figure1_config, poi_collections):
        left, right = poi_collections
        result = UFilterJoin(figure1_config, 0.7).join(left, right)
        assert (0, 0) in result.pair_ids()
        assert result.statistics.tau == 1

    def test_filter_candidates_tau_override(self, figure1_config, poi_collections):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=1, method=SignatureMethod.AU_DP)
        order = engine.build_order(left, right)
        left_signed = engine.sign_collection(left, order)
        right_signed = engine.sign_collection(right, order)
        loose = engine.filter_candidates(left_signed, right_signed, tau=1)
        strict = engine.filter_candidates(left_signed, right_signed, tau=3)
        assert set(strict.candidates).issubset(set(loose.candidates))
        assert loose.processed_pairs == strict.processed_pairs


class TestCustomVerifier:
    def test_verifier_threshold_validation(self):
        with pytest.raises(ValueError):
            Verifier(lambda a, b: 1.0, threshold=2.0)

    def test_custom_verifier_is_used(self, figure1_config, poi_collections):
        left, right = poi_collections
        always_one = Verifier(lambda a, b: 1.0, threshold=0.5)
        engine = PebbleJoin(figure1_config, 0.5, tau=1, verifier=always_one)
        result = engine.join(left, right)
        # Every candidate passes with the constant verifier.
        assert len(result) == result.statistics.candidate_count

    def test_unified_verifier_counts_calls(self, figure1_config, poi_collections):
        left, right = poi_collections
        verifier = UnifiedVerifier(figure1_config, 0.7)
        engine = PebbleJoin(figure1_config, 0.7, tau=1, verifier=verifier)
        result = engine.join(left, right)
        assert verifier.verified_count == result.statistics.candidate_count


class TestUnifiedJoinFacade:
    def test_fixed_tau(self, figure1_rules, figure1_taxonomy, poi_collections):
        left, right = poi_collections
        join = UnifiedJoin(rules=figure1_rules, taxonomy=figure1_taxonomy, theta=0.7, tau=2)
        result = join.join(left, right)
        assert (0, 0) in result.pair_ids()

    def test_invalid_tau(self, figure1_rules):
        with pytest.raises(ValueError):
            UnifiedJoin(rules=figure1_rules, tau=0)
        with pytest.raises(ValueError):
            UnifiedJoin(rules=figure1_rules, tau="sometimes")
        with pytest.raises(ValueError):
            UnifiedJoin(rules=figure1_rules, tau=3, method=SignatureMethod.U_FILTER)

    def test_auto_tau_with_ufilter_warns_and_skips_recommendation(
        self, figure1_rules, figure1_taxonomy, poi_collections
    ):
        left, right = poi_collections
        with pytest.warns(UserWarning, match="U-Filter"):
            join = UnifiedJoin(
                rules=figure1_rules,
                taxonomy=figure1_taxonomy,
                theta=0.7,
                tau="auto",
                method=SignatureMethod.U_FILTER,
            )
        assert join.tau == 1
        result = join.join(left, right)
        # The pointless sampling recommendation is skipped entirely.
        assert join.last_recommendation is None
        assert result.statistics.suggestion_seconds == 0.0
        assert result.statistics.tau == 1

    def test_auto_tau_on_tiny_dataset(self, tiny_dataset):
        from repro.evaluation.experiments import split_dataset

        left, right = split_dataset(tiny_dataset, 25, 25)
        join = UnifiedJoin(
            rules=tiny_dataset.rules,
            taxonomy=tiny_dataset.taxonomy,
            theta=0.85,
            tau="auto",
            sample_probability=0.3,
            tau_universe=(1, 2, 3),
            recommendation_seed=9,
        )
        result = join.join(left, right)
        assert join.last_recommendation is not None
        assert result.statistics.suggestion_seconds > 0
        assert join.last_recommendation.best_tau in (1, 2, 3)
