"""Tests for individual measures, msim, and MeasureConfig."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.measures import Measure, MeasureConfig


class TestMeasureCodes:
    def test_from_code(self):
        assert Measure.from_code("J") is Measure.JACCARD
        assert Measure.from_code("s") is Measure.SYNONYM
        assert Measure.from_code("T") is Measure.TAXONOMY

    def test_unknown_code(self):
        with pytest.raises(ValueError):
            Measure.from_code("X")

    def test_short_codes_roundtrip(self):
        for measure in Measure:
            assert Measure.from_code(measure.short_code) is measure


class TestMeasureConfig:
    def test_default_enables_all(self, figure1_config):
        assert figure1_config.uses(Measure.JACCARD)
        assert figure1_config.uses(Measure.SYNONYM)
        assert figure1_config.uses(Measure.TAXONOMY)
        assert figure1_config.codes == "JST"

    def test_from_codes_subsets(self, figure1_rules, figure1_taxonomy):
        config = MeasureConfig.from_codes("TJ", rules=figure1_rules, taxonomy=figure1_taxonomy)
        assert config.uses(Measure.TAXONOMY)
        assert config.uses(Measure.JACCARD)
        assert not config.uses(Measure.SYNONYM)

    def test_with_measures_copy(self, figure1_config):
        restricted = figure1_config.with_measures("J")
        assert restricted.enabled == frozenset({Measure.JACCARD})
        assert figure1_config.enabled != restricted.enabled

    def test_empty_measures_rejected(self):
        with pytest.raises(ValueError):
            MeasureConfig(enabled=frozenset())

    def test_invalid_q_rejected(self):
        with pytest.raises(ValueError):
            MeasureConfig(q=0)

    def test_max_rule_tokens(self, figure1_config):
        # "coffee shop" (rule) and "coffee drinks"/"apple cake" (taxonomy) are 2 tokens.
        assert figure1_config.max_rule_tokens == 2


class TestIndividualMeasures:
    def test_jaccard_segments(self, figure1_config):
        value = figure1_config.jaccard(("helsingki",), ("helsinki",))
        assert value == pytest.approx(2 / 3)

    def test_synonym_similarity(self, figure1_config):
        assert figure1_config.synonym(("coffee", "shop"), ("cafe",)) == 1.0
        assert figure1_config.synonym(("coffee",), ("cafe",)) == 0.0

    def test_taxonomy_similarity(self, figure1_config):
        assert figure1_config.taxonomy_similarity(("latte",), ("espresso",)) == pytest.approx(0.8)

    def test_disabled_measure_returns_zero(self, figure1_rules, figure1_taxonomy):
        config = MeasureConfig.from_codes("J", rules=figure1_rules, taxonomy=figure1_taxonomy)
        assert config.synonym(("coffee", "shop"), ("cafe",)) == 1.0  # raw helper still works
        # but msim ignores it:
        value, measure = config.msim_with_measure(("coffee", "shop"), ("cafe",))
        assert measure is Measure.JACCARD or value == 0.0

    def test_missing_knowledge_sources(self):
        config = MeasureConfig()  # no rules, no taxonomy
        assert config.synonym(("a",), ("b",)) == 0.0
        assert config.taxonomy_similarity(("a",), ("b",)) == 0.0
        assert config.msim(("ab",), ("ab",)) == 1.0


class TestMsim:
    def test_msim_picks_maximum(self, figure1_config):
        # Paper: msim(cake, apple cake) = max(Jaccard 0.33, taxonomy 0.75) = 0.75.
        value, measure = figure1_config.msim_with_measure(("cake",), ("apple", "cake"))
        assert value == pytest.approx(0.75)
        assert measure is Measure.TAXONOMY

    def test_msim_synonym_beats_jaccard(self, figure1_config):
        value, measure = figure1_config.msim_with_measure(("coffee", "shop"), ("cafe",))
        assert value == 1.0
        assert measure is Measure.SYNONYM

    def test_msim_zero_for_unrelated(self, figure1_config):
        value, measure = figure1_config.msim_with_measure(("xyz",), ("qqq",))
        assert value == 0.0
        assert measure is None

    def test_msim_cache_returns_same_value(self, figure1_config):
        first = figure1_config.msim(("latte",), ("espresso",))
        second = figure1_config.msim(("latte",), ("espresso",))
        assert first == second == pytest.approx(0.8)

    @settings(max_examples=40, deadline=None)
    @given(
        left=st.lists(st.sampled_from(["coffee", "shop", "latte", "cake", "apple"]), min_size=1, max_size=3),
        right=st.lists(st.sampled_from(["cafe", "espresso", "cake", "gateau", "apple"]), min_size=1, max_size=3),
    )
    def test_msim_range_and_symmetry_guard(self, figure1_config, left, right):
        value = figure1_config.msim(tuple(left), tuple(right))
        assert 0.0 <= value <= 1.0
        # msim dominates every individual enabled measure.
        assert value >= figure1_config.jaccard(left, right) - 1e-12
        assert value >= figure1_config.synonym(left, right) - 1e-12
        assert value >= figure1_config.taxonomy_similarity(left, right) - 1e-12
