"""Tests for maximum-weight bipartite matching (Hungarian and greedy)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import (
    greedy_matching,
    hungarian_matching,
    matching_weight_upper_bound,
    maximum_weight_matching,
)


def brute_force_matching(weights):
    """Exhaustive optimum for small matrices (reference implementation)."""
    rows = len(weights)
    cols = len(weights[0]) if rows else 0
    best = 0.0
    smaller, larger = (rows, cols) if rows <= cols else (cols, rows)
    for assignment in itertools.permutations(range(larger), smaller):
        total = 0.0
        for small_index, large_index in enumerate(assignment):
            if rows <= cols:
                total += weights[small_index][large_index]
            else:
                total += weights[large_index][small_index]
        best = max(best, total)
    return best


WEIGHT_MATRICES = st.integers(min_value=1, max_value=4).flatmap(
    lambda rows: st.integers(min_value=1, max_value=4).flatmap(
        lambda cols: st.lists(
            st.lists(st.floats(min_value=0, max_value=1, allow_nan=False), min_size=cols, max_size=cols),
            min_size=rows, max_size=rows,
        )
    )
)


class TestMaximumWeightMatching:
    def test_simple_square(self):
        weights = [[1.0, 0.0], [0.0, 1.0]]
        total, pairs = maximum_weight_matching(weights)
        assert total == pytest.approx(2.0)
        assert set(pairs) == {(0, 0), (1, 1)}

    def test_prefers_heavier_diagonal(self):
        weights = [[0.9, 0.5], [0.5, 0.9]]
        total, _ = maximum_weight_matching(weights)
        assert total == pytest.approx(1.8)

    def test_anti_diagonal_is_better(self):
        weights = [[0.1, 0.9], [0.9, 0.1]]
        total, pairs = maximum_weight_matching(weights)
        assert total == pytest.approx(1.8)
        assert set(pairs) == {(0, 1), (1, 0)}

    def test_rectangular_matrix(self):
        weights = [[0.5, 0.9, 0.1]]
        total, pairs = maximum_weight_matching(weights)
        assert total == pytest.approx(0.9)
        assert pairs == [(0, 1)]

    def test_zero_weights_excluded_from_pairs(self):
        weights = [[0.0, 0.0], [0.0, 0.7]]
        total, pairs = maximum_weight_matching(weights)
        assert total == pytest.approx(0.7)
        assert pairs == [(1, 1)]

    def test_empty_matrix(self):
        assert maximum_weight_matching([]) == (0.0, [])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            maximum_weight_matching([[-0.5]])

    def test_ragged_matrix_rejected(self):
        with pytest.raises(ValueError):
            maximum_weight_matching([[0.1, 0.2], [0.3]])

    def test_hungarian_alias(self):
        assert hungarian_matching is maximum_weight_matching

    def test_example3_aggregation(self):
        # Example 3: segment similarities 1, 0.8, 2/3 all matched.
        weights = [
            [1.0, 0.0, 0.0],
            [0.0, 0.8, 0.0],
            [0.0, 0.0, 2 / 3],
        ]
        total, _ = maximum_weight_matching(weights)
        assert total == pytest.approx(1.0 + 0.8 + 2 / 3)

    @settings(max_examples=60, deadline=None)
    @given(WEIGHT_MATRICES)
    def test_matches_brute_force(self, weights):
        total, pairs = maximum_weight_matching(weights)
        assert total == pytest.approx(brute_force_matching(weights), abs=1e-9)
        # Pairs form a valid matching.
        rows = [i for i, _ in pairs]
        cols = [j for _, j in pairs]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))

    @settings(max_examples=60, deadline=None)
    @given(WEIGHT_MATRICES)
    def test_total_equals_sum_of_selected(self, weights):
        total, pairs = maximum_weight_matching(weights)
        assert total == pytest.approx(sum(weights[i][j] for i, j in pairs))


class TestGreedyMatching:
    @settings(max_examples=60, deadline=None)
    @given(WEIGHT_MATRICES)
    def test_greedy_is_at_most_optimal(self, weights):
        greedy_total, _ = greedy_matching(weights)
        optimal_total, _ = maximum_weight_matching(weights)
        assert greedy_total <= optimal_total + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(WEIGHT_MATRICES)
    def test_greedy_is_half_approximate(self, weights):
        greedy_total, _ = greedy_matching(weights)
        optimal_total, _ = maximum_weight_matching(weights)
        assert greedy_total >= optimal_total / 2 - 1e-9

    def test_greedy_valid_matching(self):
        weights = [[0.9, 0.8], [0.8, 0.1]]
        total, pairs = greedy_matching(weights)
        rows = [i for i, _ in pairs]
        cols = [j for _, j in pairs]
        assert len(rows) == len(set(rows))
        assert len(cols) == len(set(cols))


class TestMatchingWeightUpperBound:
    @settings(max_examples=60, deadline=None)
    @given(WEIGHT_MATRICES)
    def test_dominates_optimum_small(self, weights):
        bound = matching_weight_upper_bound(weights)
        optimal_total, _ = maximum_weight_matching(weights)
        assert bound >= optimal_total - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(WEIGHT_MATRICES)
    def test_dominates_optimum_on_fallback_path(self, weights):
        # exact_limit=0 forces the row/column/greedy fallback bounds even on
        # small matrices, so the fallback's soundness is exercised directly.
        bound = matching_weight_upper_bound(weights, exact_limit=0)
        optimal_total, _ = maximum_weight_matching(weights)
        assert bound >= optimal_total - 1e-9

    def test_small_matrices_are_tight(self):
        weights = [[0.9, 0.2], [0.3, 0.8]]
        optimal_total, _ = maximum_weight_matching(weights)
        assert matching_weight_upper_bound(weights) == pytest.approx(optimal_total)

    def test_empty_matrix(self):
        assert matching_weight_upper_bound([]) == 0.0
        assert matching_weight_upper_bound([[]]) == 0.0
