"""Executor equivalence, pickling, and worker/stats regression tests.

The multi-core driver's contract is strict: for any join configuration, the
``serial``, ``thread``, and ``process`` executors must return bit-identical
pairs, similarity values, and statistics counters at every worker count.
These tests enforce that over randomized joins across measure
configurations, self- and two-collection joins, and both the one-shot and
streaming APIs, plus the pickle round-trips the process path relies on and
the satellite bugfixes of this change (suggestion-seconds threading, config
equality, hot-probe group splitting, adaptive tier gating).
"""

from __future__ import annotations

import pickle
import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.graph import GraphSide
from repro.core.measures import MeasureConfig
from repro.datasets import TINY_PROFILE, generate_dataset
from repro.join import PebbleJoin, UnifiedJoin
from repro.join.aufilter import _resolve_executor
from repro.join.verification import UnifiedVerifier, _chunk_groups, _group_candidates

MEASURE_CODES = ("J", "S", "T", "TJS")
THETA = 0.55
TAU = 2


@pytest.fixture(scope="module")
def parallel_dataset():
    """A small synthetic corpus with synonym rules and a taxonomy."""
    return generate_dataset(TINY_PROFILE, seed=47)


def _config(dataset, codes: str) -> MeasureConfig:
    return MeasureConfig.from_codes(
        codes, rules=dataset.rules, taxonomy=dataset.taxonomy, q=3
    )


def _triples(pairs):
    return [(pair.left_id, pair.right_id, pair.similarity) for pair in pairs]


def _counters(stats):
    return {name: getattr(stats, name) for name in stats._COUNTERS}


def _run(config, collection, right=None, **join_kwargs):
    engine = PebbleJoin(config, THETA, tau=TAU)
    result = engine.join(collection, right, **join_kwargs)
    return result, engine


class TestExecutorEquivalence:
    @pytest.mark.parametrize("codes", MEASURE_CODES)
    def test_self_join_identical_across_executors(self, parallel_dataset, codes):
        config = _config(parallel_dataset, codes)
        collection = parallel_dataset.records.head(40)
        reference, _ = _run(config, collection)
        expected = _triples(reference.pairs)
        expected_stats = _counters(reference.statistics.verification)

        for kwargs in (
            {"executor": "thread", "workers": 2},
            {"executor": "process", "workers": 1},
            {"executor": "process", "workers": 3},
        ):
            result, engine = _run(config, collection, **kwargs)
            assert _triples(result.pairs) == expected, kwargs
            assert _counters(result.statistics.verification) == expected_stats, kwargs
            assert result.statistics.candidate_count == reference.statistics.candidate_count
            assert result.statistics.processed_pairs == reference.statistics.processed_pairs
            # The engine's verifier mirrors the serial accumulation contract.
            assert engine.verifier.verified_count == result.statistics.candidate_count

    def test_two_collection_join_identical_across_executors(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        records = parallel_dataset.records.head(48)
        left = records.subset(range(0, 24))
        right = records.subset(range(24, 48))
        reference, _ = _run(config, left, right)
        for kwargs in (
            {"executor": "thread", "workers": 3},
            {"executor": "process", "workers": 2},
            {"executor": "process", "workers": 4},
        ):
            result, _ = _run(config, left, right, **kwargs)
            assert _triples(result.pairs) == _triples(reference.pairs), kwargs
            assert _counters(result.statistics.verification) == _counters(
                reference.statistics.verification
            ), kwargs

    def test_streamed_batches_identical_to_serial_stream(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(40)
        serial = list(
            PebbleJoin(config, THETA, tau=TAU).join_batches(collection, batch_size=7)
        )
        pooled = list(
            PebbleJoin(config, THETA, tau=TAU).join_batches(
                collection, batch_size=7, executor="process", workers=2
            )
        )
        assert len(pooled) == len(serial)
        for mine, theirs in zip(pooled, serial):
            assert mine.probe_range == theirs.probe_range
            assert _triples(mine.pairs) == _triples(theirs.pairs)
            assert mine.candidate_count == theirs.candidate_count
            assert mine.processed_pairs == theirs.processed_pairs
            assert _counters(mine.verification) == _counters(theirs.verification)

    def test_shard_size_does_not_change_results(self, parallel_dataset):
        """Merging is lossless at any shard granularity, not just defaults."""
        from repro.join.parallel import process_join

        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(36)
        reference, _ = _run(config, collection)
        for shards_per_worker in (1, 9):
            engine = PebbleJoin(config, THETA, tau=TAU)
            result = process_join(
                engine, collection, workers=2, shards_per_worker=shards_per_worker
            )
            assert _triples(result.pairs) == _triples(reference.pairs)
            assert _counters(result.statistics.verification) == _counters(
                reference.statistics.verification
            )

    def test_unified_join_executor_passthrough(self, parallel_dataset):
        kwargs = dict(
            rules=parallel_dataset.rules,
            taxonomy=parallel_dataset.taxonomy,
            theta=THETA,
            tau=TAU,
        )
        collection = parallel_dataset.records.head(30)
        serial = UnifiedJoin(**kwargs).join(collection)
        pooled = UnifiedJoin(**kwargs).join(
            collection, executor="process", workers=2
        )
        assert _triples(pooled.pairs) == _triples(serial.pairs)

    def test_executor_knob_validation(self, parallel_dataset):
        config = _config(parallel_dataset, "J")
        collection = parallel_dataset.records.head(6)
        engine = PebbleJoin(config, THETA, tau=1)
        with pytest.raises(ValueError):
            engine.join(collection, executor="gpu")
        with pytest.raises(ValueError):
            engine.join(collection, workers=2)  # workers need an executor
        with pytest.raises(ValueError):
            engine.join(collection, executor="serial", workers=2)
        assert _resolve_executor(None, None, 3) == ("thread", 3)
        assert _resolve_executor(None, None, 0) == ("serial", 0)
        assert _resolve_executor("thread", None, 3) == ("thread", 3)

    def test_process_executor_rejects_custom_verifier(self, parallel_dataset):
        from repro.join.verification import Verifier

        config = _config(parallel_dataset, "J")
        collection = parallel_dataset.records.head(6)
        engine = PebbleJoin(
            config, THETA, tau=1, verifier=Verifier(lambda a, b: 1.0, 0.5)
        )
        with pytest.raises(ValueError, match="UnifiedVerifier"):
            engine.join(collection, executor="process", workers=1)


class TestWorkerSideSigning:
    @pytest.mark.parametrize("codes", MEASURE_CODES)
    def test_self_join_identical_to_serial(self, parallel_dataset, codes):
        config = _config(parallel_dataset, codes)
        collection = parallel_dataset.records.head(40)
        reference, _ = _run(config, collection)
        for workers in (1, 3):
            result, engine = _run(
                config,
                collection,
                executor="process",
                workers=workers,
                sign_in_workers=True,
            )
            assert _triples(result.pairs) == _triples(reference.pairs), workers
            assert _counters(result.statistics.verification) == _counters(
                reference.statistics.verification
            ), workers
            assert result.statistics.candidate_count == reference.statistics.candidate_count
            assert result.statistics.processed_pairs == reference.statistics.processed_pairs
            # Signature statistics come back from the workers' signing.
            assert (
                result.statistics.avg_signature_length_left
                == reference.statistics.avg_signature_length_left
            )
            assert engine.verifier.verified_count == result.statistics.candidate_count

    def test_two_collection_join_identical_to_serial(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        records = parallel_dataset.records.head(48)
        left = records.subset(range(0, 24))
        right = records.subset(range(24, 48))
        reference, _ = _run(config, left, right)
        result, _ = _run(
            config, left, right, executor="process", workers=2, sign_in_workers=True
        )
        assert _triples(result.pairs) == _triples(reference.pairs)
        assert _counters(result.statistics.verification) == _counters(
            reference.statistics.verification
        )
        assert (
            result.statistics.avg_signature_length_right
            == reference.statistics.avg_signature_length_right
        )

    def test_streamed_batches_identical_to_serial_stream(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(40)
        serial = list(
            PebbleJoin(config, THETA, tau=TAU).join_batches(collection, batch_size=7)
        )
        pooled = list(
            PebbleJoin(config, THETA, tau=TAU).join_batches(
                collection,
                batch_size=7,
                executor="process",
                workers=2,
                sign_in_workers=True,
            )
        )
        assert len(pooled) == len(serial)
        for mine, theirs in zip(pooled, serial):
            assert mine.probe_range == theirs.probe_range
            assert _triples(mine.pairs) == _triples(theirs.pairs)
            assert _counters(mine.verification) == _counters(theirs.verification)

    def test_unified_join_passthrough(self, parallel_dataset):
        kwargs = dict(
            rules=parallel_dataset.rules,
            taxonomy=parallel_dataset.taxonomy,
            theta=THETA,
            tau=TAU,
        )
        collection = parallel_dataset.records.head(30)
        serial = UnifiedJoin(**kwargs).join(collection)
        pooled = UnifiedJoin(**kwargs).join(
            collection, executor="process", workers=2, sign_in_workers=True
        )
        assert _triples(pooled.pairs) == _triples(serial.pairs)

    def test_requires_process_executor(self, parallel_dataset):
        config = _config(parallel_dataset, "J")
        collection = parallel_dataset.records.head(6)
        engine = PebbleJoin(config, THETA, tau=1)
        with pytest.raises(ValueError, match="sign_in_workers"):
            engine.join(collection, sign_in_workers=True)
        with pytest.raises(ValueError, match="sign_in_workers"):
            engine.join(
                collection, executor="thread", workers=2, sign_in_workers=True
            )
        with pytest.raises(ValueError, match="sign_in_workers"):
            engine.join_batches(collection, sign_in_workers=True)

    def test_unsigned_plan_ships_no_signatures(self, parallel_dataset):
        from repro.join.parallel import build_shard_plan

        config = _config(parallel_dataset, "TJS")
        engine = PebbleJoin(config, THETA, tau=TAU)
        prepared = engine.prepare(parallel_dataset.records.head(12))
        plan = build_shard_plan(engine, prepared, sign_in_workers=True)
        assert plan.sign_in_workers
        assert plan.index_signed is None and plan.probe_signed is None
        assert plan.probe_is_left is None
        assert plan.order is not None  # workers need it to sign
        assert plan.left_prep.cached_signature_count == 0
        # Pebbles must survive for worker-side signing.
        assert all(r.pebbles is not None for r in plan.left_prep.prepared_records)
        assert plan.signing_theta == THETA and plan.signing_tau == TAU
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.left_prep is clone.right_prep


class TestRandomizedPathEquivalence:
    def test_all_paths_bit_identical(self, parallel_dataset, tmp_path):
        """Serial, flat process (every payload transport), worker-signed,
        warm-pool, and store-warmed joins must agree pair-for-pair (ids and
        similarities) on randomized configs."""
        from repro.join.pool import WarmJoinPool
        from repro.store import PreparedStore

        rng = random.Random(29)
        records = parallel_dataset.records
        for trial in range(3):
            codes = rng.choice(MEASURE_CODES)
            theta = rng.choice((0.45, 0.6, 0.75))
            tau = rng.choice((1, 2, 3))
            size = rng.randrange(24, 40)
            workers = rng.choice((1, 2, 3))
            collection = records.head(size)
            config = _config(parallel_dataset, codes)
            label = (trial, codes, theta, tau, size, workers)

            serial = PebbleJoin(config, theta, tau=tau).join(collection)
            expected = _triples(serial.pairs)

            slim = PebbleJoin(config, theta, tau=tau).join(
                collection, executor="process", workers=workers
            )
            assert _triples(slim.pairs) == expected, label

            signed = PebbleJoin(config, theta, tau=tau).join(
                collection,
                executor="process",
                workers=workers,
                sign_in_workers=True,
            )
            assert _triples(signed.pairs) == expected, label

            # The flat plan through each explicit transport: the shared-
            # memory segment and the legacy per-worker pickle.
            for payload_mode in ("shm", "bytes"):
                flat = PebbleJoin(config, theta, tau=tau).join(
                    collection,
                    executor="process",
                    workers=workers,
                    payload_mode=payload_mode,
                )
                assert _triples(flat.pairs) == expected, (label, payload_mode)

            with WarmJoinPool(workers=workers) as warm_pool:
                pooled = PebbleJoin(config, theta, tau=tau).join(
                    collection, executor="process", pool=warm_pool
                )
            assert _triples(pooled.pairs) == expected, label

            store = PreparedStore(tmp_path / f"trial-{trial}")
            prepared = store.prepare(collection, config)
            PebbleJoin(config, theta, tau=tau).join(prepared)
            store.save(prepared)
            warmed = PreparedStore(tmp_path / f"trial-{trial}").prepare(
                collection, config
            )
            warm = PebbleJoin(config, theta, tau=tau).join(warmed)
            assert _triples(warm.pairs) == expected, label
            warm_process = PebbleJoin(config, theta, tau=tau).join(
                warmed, executor="process", workers=workers
            )
            assert _triples(warm_process.pairs) == expected, label


class TestPickleRoundTrips:
    def test_prepared_collection_round_trip(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(12)
        engine = PebbleJoin(config, THETA, tau=TAU)
        prepared = engine.prepare(collection)
        order = prepared.build_order(engine.order_strategy)
        signed = prepared.signed(order, THETA, TAU, engine.method)
        prepared.graph_side(0)
        prepared.graph_side(3)

        # A partner with a shared (weakref-cached) order must not block pickling.
        partner = engine.prepare(parallel_dataset.records.head(6))
        prepared.shared_order_with(partner)

        clone = pickle.loads(pickle.dumps(prepared))
        assert len(clone) == len(prepared)
        assert clone.config == config
        # The signature cache survived and is re-keyed to the cloned order.
        cloned_order = clone.build_order(engine.order_strategy)
        resigned = clone.signed(cloned_order, THETA, TAU, engine.method)
        assert [r.signature_length for r in resigned] == [
            r.signature_length for r in signed
        ]
        assert clone.cached_signature_count == prepared.cached_signature_count
        # Cached verification sides shipped by value.
        assert clone.prepared_records[0].graph_side is not None
        # The clone joins identically to the original preparation.
        reference = PebbleJoin(config, THETA, tau=TAU).join(prepared)
        rejoined = PebbleJoin(config, THETA, tau=TAU).join(clone)
        assert _triples(rejoined.pairs) == _triples(reference.pairs)

    def test_graph_side_round_trip(self, parallel_dataset):
        from repro.core.graph import build_conflict_graph_from_sides, usim_upper_bound

        config = _config(parallel_dataset, "TJS")
        record = parallel_dataset.records[0]
        other = parallel_dataset.records[1]
        side = GraphSide(record.tokens, config)
        # Warm every cached property so the pickle carries derived state too.
        side.match_state, side.bound_state, side.overlap_sets
        side.min_partition_size, side.singleton_token_tuples
        clone = pickle.loads(pickle.dumps(side))
        assert clone.tokens == side.tokens
        assert clone.segments == side.segments
        assert clone.min_partition_size == side.min_partition_size
        partner = GraphSide(other.tokens, config)
        graph = build_conflict_graph_from_sides(partner, clone, clone.config)
        reference = build_conflict_graph_from_sides(partner, side, config)
        assert [v.weight for v in graph.vertices] == [
            v.weight for v in reference.vertices
        ]
        assert usim_upper_bound(partner, clone, clone.config) == usim_upper_bound(
            partner, side, config
        )

    def test_measure_config_round_trip_equality(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config
        assert hash(clone) == hash(config)
        # The msim memo is per-process and must not travel.
        config.msim(("coffee",), ("coffee",))
        reclone = pickle.loads(pickle.dumps(config))
        assert reclone._msim_cache == {}
        # Inequality still detected on real differences.
        assert clone != _config(parallel_dataset, "TJ")
        assert clone != MeasureConfig.from_codes(
            "TJS", rules=parallel_dataset.rules, taxonomy=parallel_dataset.taxonomy, q=4
        )

    def test_worker_payload_trims_stale_signings(self, parallel_dataset):
        """Slim plans ship no signings at all; full plans only the in-use one."""
        from repro.join.parallel import build_shard_plan

        config = _config(parallel_dataset, "TJS")
        engine = PebbleJoin(config, THETA, tau=TAU)
        prepared = engine.prepare(parallel_dataset.records.head(12))
        order = prepared.build_order(engine.order_strategy)
        # A historical signing under another θ must not ride to workers.
        prepared.signed(order, 0.95, TAU, engine.method)
        prepared.signed(order, THETA, TAU, engine.method)

        plan = build_shard_plan(engine, prepared)
        assert plan.left_prep is plan.right_prep  # self-join identity kept
        # The slim payload ships prefix views only: no signature cache, no
        # per-record pebble lists, no order.
        assert plan.left_prep.cached_signature_count == 0
        assert all(r.pebbles is None for r in plan.left_prep.prepared_records)
        assert plan.order is None
        assert plan.index_signed is plan.probe_signed
        assert prepared.cached_signature_count == 2  # caller untouched
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.left_prep is clone.right_prep
        assert clone.index_signed is clone.probe_signed
        assert len(clone.left_prep) == len(prepared)

        # The historical full payload keeps exactly the in-use signing.
        full = build_shard_plan(engine, prepared, slim=False)
        assert full.left_prep.cached_signature_count == 1
        assert full.order is not None
        assert prepared.cached_signature_count == 2  # caller untouched

    def test_signed_record_and_order_round_trip(self, parallel_dataset):
        config = _config(parallel_dataset, "J")
        engine = PebbleJoin(config, THETA, tau=1)
        prepared = engine.prepare(parallel_dataset.records.head(8))
        order = prepared.build_order(engine.order_strategy)
        signed = prepared.signed(order, THETA, 1, engine.method)
        order_clone, signed_clone = pickle.loads(pickle.dumps((order, signed)))
        assert len(order_clone) == len(order)
        assert [r.signature_length for r in signed_clone] == [
            r.signature_length for r in signed
        ]
        assert [tuple(p.key for p in r.signature) for r in signed_clone] == [
            tuple(p.key for p in r.signature) for r in signed
        ]

    def test_slim_view_round_trip_and_protocol(self, parallel_dataset):
        from repro.join.artifacts import SignedRecordView, slim_signed_views

        config = _config(parallel_dataset, "TJS")
        engine = PebbleJoin(config, THETA, tau=TAU)
        prepared = engine.prepare(parallel_dataset.records.head(10))
        order = prepared.build_order(engine.order_strategy)
        signed = prepared.signed(order, THETA, TAU, engine.method)
        views = slim_signed_views(signed)
        # Idempotent: re-slimming passes the same view objects through.
        assert slim_signed_views(views) == views
        for view, full in zip(views, signed):
            assert view.record is full.record
            assert view.signature_key_sequence == full.signature_key_sequence
            assert view.signature_length == full.signature_length
            assert view.pebble_count == len(full.pebbles)
            assert view.min_partition_size == full.min_partition_size
            assert view.signature_keys == full.signature_keys
        clones = pickle.loads(pickle.dumps(views))
        assert [c.signature_key_sequence for c in clones] == [
            v.signature_key_sequence for v in views
        ]
        # Views drive the filter exactly like full records.
        full_engine = PebbleJoin(config, THETA, tau=TAU)
        from_full = full_engine.filter_candidates(
            signed, signed, exclude_self_pairs=True
        )
        from_views = full_engine.filter_candidates(
            views, views, exclude_self_pairs=True
        )
        assert from_views.candidates == from_full.candidates
        assert from_views.processed_pairs == from_full.processed_pairs

    def test_pebble_free_transfer_copy_guards(self, parallel_dataset):
        from repro.join.global_order import GlobalOrder

        config = _config(parallel_dataset, "TJS")
        engine = PebbleJoin(config, THETA, tau=TAU)
        prepared = engine.prepare(parallel_dataset.records.head(8))
        slim = prepared.transfer_copy(keep_pebbles=False)
        with pytest.raises(RuntimeError, match="pebble-free"):
            slim.signed(GlobalOrder(), THETA, TAU, engine.method)
        with pytest.raises(RuntimeError, match="pebble-free"):
            slim.build_order()
        # Verification state still works: graph sides build from segments.
        assert slim.graph_side(0) is not None
        assert len(slim) == len(prepared)


class TestSatelliteFixes:
    def test_equal_config_uses_prepared_sides(self, parallel_dataset):
        """Regression: an equal-but-distinct config must hit the cached sides."""
        config_a = _config(parallel_dataset, "TJS")
        config_b = _config(parallel_dataset, "TJS")
        assert config_a == config_b and config_a is not config_b
        collection = parallel_dataset.records.head(15)
        prepared = PebbleJoin(config_a, THETA).prepare(collection)
        verifier = UnifiedVerifier(config_b, 0.3)
        candidates = [(i, j) for i in range(10) for j in (i + 1, i + 2) if j < 15]
        pairs = verifier.verify_batch(candidates, prepared, prepared)
        # The prepared collection served its own sides: the verifier-local
        # fallback memo (the historical slow path) stayed empty...
        assert verifier._side_cache == {}
        # ...and the prepared records now hold the built sides.
        assert any(r.graph_side is not None for r in prepared.prepared_records)
        reference = UnifiedVerifier(config_a, 0.3).verify_batch(
            candidates, collection, collection
        )
        assert _triples(pairs) == _triples(reference)

    def test_config_equality_tracks_knowledge_mutation(self):
        """The __eq__ memo must not return stale verdicts after a compared
        rule set or taxonomy is mutated."""
        from repro import SynonymRuleSet, Taxonomy

        rules_a = SynonymRuleSet.from_pairs([("coffee shop", "cafe")])
        rules_b = SynonymRuleSet.from_pairs([("coffee shop", "cafe")])
        tax_a, tax_b = Taxonomy("root"), Taxonomy("root")
        config_a = MeasureConfig.from_codes("TJS", rules=rules_a, taxonomy=tax_a)
        config_b = MeasureConfig.from_codes("TJS", rules=rules_b, taxonomy=tax_b)
        assert config_a == config_b  # memoised verdict
        rules_b.add_text_rule("cake", "gateau")
        assert config_a != config_b  # version stamp invalidated the memo
        rules_a.add_text_rule("cake", "gateau")
        assert config_a == config_b
        tax_b.add_node("food", tax_b.root)
        assert config_a != config_b
        tax_a.add_node("food", tax_a.root)
        assert config_a == config_b

    def test_suggestion_seconds_reported_in_batches(self, parallel_dataset):
        """Regression: tau='auto' streaming used to discard suggestion time."""
        join = UnifiedJoin(
            rules=parallel_dataset.rules,
            taxonomy=parallel_dataset.taxonomy,
            theta=THETA,
            tau="auto",
            recommendation_seed=3,
        )
        batches = list(join.join_batches(parallel_dataset.records.head(30), batch_size=8))
        assert len(batches) > 1
        assert batches[0].suggestion_seconds > 0.0
        assert all(batch.suggestion_seconds == 0.0 for batch in batches[1:])
        assert join.last_recommendation is not None
        # The one-shot API reports the same quantity through JoinStatistics.
        rejoin = UnifiedJoin(
            rules=parallel_dataset.rules,
            taxonomy=parallel_dataset.taxonomy,
            theta=THETA,
            tau="auto",
            recommendation_seed=3,
        ).join(parallel_dataset.records.head(30))
        assert rejoin.statistics.suggestion_seconds > 0.0

    def test_chunk_groups_split_hot_probe(self):
        """A single huge probe group must not serialize the whole pool."""
        hot = [(0, j) for j in range(1000)]
        cold = [[(1, 0)], [(2, 0)]]
        chunks = _chunk_groups([hot] + cold, 64)
        assert max(len(chunk) for chunk in chunks) <= 4 * 64
        assert len(chunks) >= 4  # the hot group was actually split
        # Order is preserved exactly across the split.
        flattened = [pair for chunk in chunks for pair in chunk]
        assert flattened == hot + [pair for group in cold for pair in group]
        # Small groups still pack together (no regression to per-group chunks).
        packed = _chunk_groups([[(i, 0)] for i in range(10)], 5)
        assert len(packed) == 2

    def test_hot_probe_pool_results_and_stats_exact(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(20)
        prepared = PebbleJoin(config, THETA).prepare(collection)
        # One hot probe (record 0) against every partner, repeated: a single
        # group far larger than the chunk target.
        candidates = [(0, j) for j in range(1, 20)] * 12
        candidates += [(5, j) for j in range(6, 12)]
        groups = _group_candidates(candidates, "left")
        assert len(groups[0]) > 64
        serial = UnifiedVerifier(config, 0.3)
        expected = serial.verify_batch(candidates, prepared, prepared)
        pooled = UnifiedVerifier(config, 0.3)
        with ThreadPoolExecutor(max_workers=4) as pool:
            got = pooled.verify_batch(
                candidates, prepared, prepared, pool=pool, chunk_pairs=16
            )
        assert _triples(got) == _triples(expected)
        assert _counters(pooled.stats) == _counters(serial.stats)
        assert pooled.verified_count == len(candidates)

    def test_adaptive_tiers_skip_but_keep_pairs_identical(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(30)
        prepared = PebbleJoin(config, 0.2).prepare(collection)
        rng = random.Random(11)
        candidates = sorted(
            (rng.randrange(30), rng.randrange(30)) for _ in range(600)
        )
        # θ = 0.2 over random pairs: the greedy lower bound almost never
        # clears the threshold, so the lower gate's observed hit rate
        # collapses below its cost and the tier is bypassed (the upper tier
        # keeps pruning and stays active).
        plain = UnifiedVerifier(config, 0.2)
        expected = plain.verify_batch(candidates, prepared, prepared)
        adaptive = UnifiedVerifier(
            config, 0.2, adaptive=True, adaptive_window=64, lower_tier_cost=0.1
        )
        got = adaptive.verify_batch(candidates, prepared, prepared)
        assert _triples(got) == _triples(expected)
        assert adaptive.stats.adaptive_lower_skips > 0
        # Bypassed tiers mean fewer bound computations, never fewer results.
        assert adaptive.stats.results == plain.stats.results
        assert adaptive.stats.candidates == plain.stats.candidates

    def test_unified_verifier_subclass_verify_override_honored(self, parallel_dataset):
        """verify() / _verify_one() overrides on a UnifiedVerifier subclass
        must not be bypassed by the batch engine's prepared cascade."""

        class VetoEverything(UnifiedVerifier):
            def verify(self, left, right):
                self.verified_count += 1
                return None

        class VetoViaHook(UnifiedVerifier):
            def _verify_one(self, left, right):
                return None

        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(12)
        prepared = PebbleJoin(config, 0.0).prepare(collection)
        candidates = [(i, j) for i in range(6) for j in range(6, 12)]
        verifier = VetoEverything(config, 0.0)
        assert verifier.verify_batch(candidates, prepared, prepared) == []
        assert verifier.verified_count == len(candidates)
        hooked = VetoViaHook(config, 0.0)
        assert hooked.verify_batch(candidates, prepared, prepared) == []
        assert hooked.verify_all(
            (collection[i], collection[j]) for i, j in candidates
        ) == []

    def test_process_executor_uses_verifier_threshold(self, parallel_dataset):
        """Workers must rebuild the verifier at *its* threshold, not the
        engine's filtering θ, when the two legitimately differ."""
        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(24)
        strict = UnifiedVerifier(config, 0.9)
        serial = PebbleJoin(config, 0.4, tau=1, verifier=strict).join(collection)
        # A custom-but-default-typed verifier is the supported process case.
        pooled_engine = PebbleJoin(
            config, 0.4, tau=1, verifier=UnifiedVerifier(config, 0.9)
        )
        pooled = pooled_engine.join(collection, executor="process", workers=2)
        assert _triples(pooled.pairs) == _triples(serial.pairs)
        assert _counters(pooled.statistics.verification) == _counters(
            serial.statistics.verification
        )

    def test_adaptive_join_passthrough(self, parallel_dataset):
        config = _config(parallel_dataset, "TJS")
        collection = parallel_dataset.records.head(30)
        plain = PebbleJoin(config, 0.3, tau=1).join(collection)
        adaptive_engine = PebbleJoin(
            config, 0.3, tau=1, adaptive_verification=True
        )
        adaptive = adaptive_engine.join(collection)
        assert _triples(adaptive.pairs) == _triples(plain.pairs)
        assert adaptive_engine.verifier.adaptive
