"""Tests for synonym rules and rule sets."""

import pytest
from hypothesis import given, strategies as st

from repro.synonyms.rules import SynonymRule, SynonymRuleSet


class TestSynonymRule:
    def test_basic_construction(self):
        rule = SynonymRule(("coffee", "shop"), ("cafe",), 1.0)
        assert rule.lhs_text == "coffee shop"
        assert rule.rhs_text == "cafe"
        assert rule.max_side_tokens == 2

    def test_empty_side_rejected(self):
        with pytest.raises(ValueError):
            SynonymRule((), ("cafe",))

    def test_invalid_closeness_rejected(self):
        with pytest.raises(ValueError):
            SynonymRule(("a",), ("b",), 0.0)
        with pytest.raises(ValueError):
            SynonymRule(("a",), ("b",), 1.5)

    def test_reversed(self):
        rule = SynonymRule(("a",), ("b", "c"), 0.9)
        swapped = rule.reversed()
        assert swapped.lhs == ("b", "c")
        assert swapped.rhs == ("a",)
        assert swapped.closeness == 0.9


class TestSynonymRuleSet:
    def test_from_pairs_and_lookup(self):
        rules = SynonymRuleSet.from_pairs([("coffee shop", "cafe")])
        assert len(rules) == 1
        assert rules.matches_any_side(("coffee", "shop"))
        assert rules.matches_any_side(("cafe",))
        assert not rules.matches_any_side(("tea",))

    def test_similarity_is_symmetric_lookup(self):
        rules = SynonymRuleSet.from_pairs([("coffee shop", "cafe")])
        assert rules.similarity(("coffee", "shop"), ("cafe",)) == 1.0
        assert rules.similarity(("cafe",), ("coffee", "shop")) == 1.0
        assert rules.similarity(("cafe",), ("tea",)) == 0.0

    def test_similarity_uses_best_closeness(self):
        rules = SynonymRuleSet()
        rules.add(SynonymRule(("a",), ("b",), 0.5))
        rules.add(SynonymRule(("a",), ("b",), 0.9))
        assert rules.similarity(("a",), ("b",)) == 0.9

    def test_text_similarity(self):
        rules = SynonymRuleSet.from_pairs([("new york", "ny")])
        assert rules.text_similarity("New   York", "NY") == 1.0

    def test_matching_spans(self):
        rules = SynonymRuleSet.from_pairs([("coffee shop", "cafe")])
        spans = rules.matching_spans(("best", "coffee", "shop", "cafe"))
        assert (1, 3) in spans   # "coffee shop"
        assert (3, 4) in spans   # "cafe"

    def test_max_side_tokens(self):
        rules = SynonymRuleSet.from_pairs([("a b c", "d"), ("e", "f")])
        assert rules.max_side_tokens == 3
        assert rules.side_lengths == {1, 3}

    def test_lhs_pebbles_for_both_sides(self):
        rules = SynonymRuleSet.from_pairs([("coffee shop", "cafe")], closeness=0.8)
        # Segment equal to the rhs still yields the lhs pebble.
        pebbles = rules.lhs_pebbles_for(("cafe",))
        assert pebbles == [(("coffee", "shop"), 0.8)]
        pebbles = rules.lhs_pebbles_for(("coffee", "shop"))
        assert pebbles == [(("coffee", "shop"), 0.8)]

    def test_rules_with_side(self):
        rules = SynonymRuleSet.from_pairs([("a", "b"), ("b", "c")])
        found = rules.rules_with_side(("b",))
        assert len(found) == 2

    def test_empty_ruleset(self):
        rules = SynonymRuleSet()
        assert len(rules) == 0
        assert rules.max_side_tokens == 0
        assert rules.similarity(("a",), ("b",)) == 0.0
        assert rules.matching_spans(("a", "b")) == []

    @given(st.lists(
        st.tuples(
            st.text(alphabet="abc", min_size=1, max_size=3),
            st.text(alphabet="xyz", min_size=1, max_size=3),
        ),
        min_size=1, max_size=10,
    ))
    def test_every_added_rule_is_found(self, pairs):
        rules = SynonymRuleSet.from_pairs(pairs)
        for lhs, rhs in pairs:
            assert rules.text_similarity(lhs, rhs) == 1.0
