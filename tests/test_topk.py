"""Unit tests for the bound-ordered top-k core (`repro.core.topk`)."""

from __future__ import annotations

import random

import pytest

from repro.core.topk import bounded_top_k


def brute_force(items, scores, k, tie_key):
    scored = [
        (item, scores[item]) for item in items if scores[item] is not None
    ]
    scored.sort(key=lambda pair: (-pair[1], tie_key(pair[0])))
    return scored[:k]


def test_exact_against_brute_force_randomized():
    rng = random.Random(2024)
    for trial in range(200):
        count = rng.randint(0, 20)
        items = list(range(count))
        scores = {}
        bounds = []
        for item in items:
            score = round(rng.uniform(0.0, 1.0), 2)
            # Bounds must dominate scores; make many of them equal or tied
            # so the early stop's strictness is actually exercised.
            bound = min(1.0, score + rng.choice([0.0, 0.0, 0.1, 0.3]))
            scores[item] = score if rng.random() > 0.2 else None
            bounds.append(bound)
        k = rng.randint(1, 6)
        evaluated_items = []

        def evaluate(item):
            evaluated_items.append(item)
            return scores[item]

        top, evaluated = bounded_top_k(
            items, bounds, evaluate, k, tie_key=lambda item: item
        )
        assert top == brute_force(items, scores, k, lambda item: item)
        assert evaluated == len(evaluated_items) <= len(items)


def test_early_stop_skips_dominated_candidates():
    items = ["a", "b", "c", "d"]
    bounds = [1.0, 0.9, 0.3, 0.2]
    scores = {"a": 0.95, "b": 0.85, "c": 0.3, "d": 0.2}
    calls = []

    def evaluate(item):
        calls.append(item)
        return scores[item]

    top, evaluated = bounded_top_k(items, bounds, evaluate, 2)
    assert [item for item, _ in top] == ["a", "b"]
    # c and d are bounded strictly below the 2nd-best score: never scored.
    assert calls == ["a", "b"]
    assert evaluated == 2


def test_ties_at_the_boundary_are_still_evaluated():
    # kth best == remaining bound: the remaining item may tie and win on
    # the tie key, so it must be evaluated (strict-inequality stop).
    items = [10, 3]
    bounds = [0.5, 0.5]
    top, evaluated = bounded_top_k(
        items, bounds, lambda item: 0.5, 1, tie_key=lambda item: item
    )
    assert evaluated == 2
    assert top == [(3, 0.5)]


def test_validation():
    with pytest.raises(ValueError, match="k"):
        bounded_top_k([], [], lambda item: None, 0)
    with pytest.raises(ValueError, match="aligned"):
        bounded_top_k([1], [], lambda item: None, 1)
    assert bounded_top_k([], [], lambda item: None, 3) == ([], 0)
