"""Tests for pebble generation, the global order, and the partition bound."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.measures import Measure, MeasureConfig
from repro.join.global_order import GlobalOrder
from repro.join.partition_bound import greedy_cover_size, min_partition_size
from repro.join.pebbles import generate_pebbles, segments_for_pebbles


class TestPebbleGeneration:
    def test_table2_coffee_pebbles(self, figure1_config):
        # Table 2: segment "coffee" has 5 Jaccard 2-gram pebbles of weight 1/5
        # and 3 taxonomy ancestor pebbles (Wikipedia, food, coffee) of weight 1/3.
        segments, pebbles = generate_pebbles(("coffee",), figure1_config)
        assert len(segments) == 1
        jaccard = [p for p in pebbles if p.measure is Measure.JACCARD]
        taxonomy = [p for p in pebbles if p.measure is Measure.TAXONOMY]
        synonym = [p for p in pebbles if p.measure is Measure.SYNONYM]
        assert {p.text for p in jaccard} == {"co", "of", "ff", "fe", "ee"}
        assert all(p.weight == pytest.approx(1 / 5) for p in jaccard)
        assert {p.text for p in taxonomy} == {"wikipedia", "food", "coffee"}
        assert all(p.weight == pytest.approx(1 / 3) for p in taxonomy)
        assert synonym == []

    def test_table2_cafe_pebbles(self, figure1_config):
        # Table 2: "cafe" has 3 Jaccard pebbles of weight 1/3 and the synonym
        # pebble "coffee shop" of weight 1.
        _, pebbles = generate_pebbles(("cafe",), figure1_config)
        jaccard = [p for p in pebbles if p.measure is Measure.JACCARD]
        synonym = [p for p in pebbles if p.measure is Measure.SYNONYM]
        assert {p.text for p in jaccard} == {"ca", "af", "fe"}
        assert all(p.weight == pytest.approx(1 / 3) for p in jaccard)
        assert [(p.text, p.weight) for p in synonym] == [("coffee shop", 1.0)]

    def test_example6_pebble_count(self, figure1_config):
        # Example 6: string T = "espresso cafe Helsinki" generates 23 pebbles.
        _, pebbles = generate_pebbles(("espresso", "cafe", "helsinki"), figure1_config)
        assert len(pebbles) == 23

    def test_keys_are_namespaced_by_measure(self, figure1_config):
        _, pebbles = generate_pebbles(("coffee",), figure1_config)
        measures_per_text = {}
        for pebble in pebbles:
            assert pebble.key[0] in {"J", "S", "T"}
            measures_per_text.setdefault(pebble.text, set()).add(pebble.key[0])
        # "coffee" appears both as taxonomy node and could collide with grams otherwise.
        assert measures_per_text["coffee"] == {"T"}

    def test_disabled_measures_generate_no_pebbles(self, figure1_rules, figure1_taxonomy):
        config = MeasureConfig.from_codes("J", rules=figure1_rules, taxonomy=figure1_taxonomy)
        _, pebbles = generate_pebbles(("coffee", "shop"), config)
        assert all(p.measure is Measure.JACCARD for p in pebbles)

    def test_segment_indices_are_valid(self, figure1_config):
        segments, pebbles = generate_pebbles(
            ("coffee", "shop", "latte", "helsingki"), figure1_config
        )
        for pebble in pebbles:
            assert 0 <= pebble.segment_index < len(segments)


class TestGlobalOrder:
    def test_frequency_order_puts_rare_first(self, figure1_config):
        order = GlobalOrder()
        _, common = generate_pebbles(("coffee",), figure1_config)
        _, rare = generate_pebbles(("zebra",), figure1_config)
        # "coffee" pebbles registered twice, "zebra" pebbles once.
        order.add_record_pebbles(common)
        order.add_record_pebbles(common)
        order.add_record_pebbles(rare)
        mixed = list(common) + list(rare)
        ordered = order.sort_pebbles(mixed)
        frequencies = [order.frequency(p.key) for p in ordered]
        assert frequencies == sorted(frequencies)

    def test_weight_order(self, figure1_config):
        order = GlobalOrder("weight")
        _, pebbles = generate_pebbles(("cafe",), figure1_config)
        ordered = order.sort_pebbles(pebbles)
        weights = [p.weight for p in ordered]
        assert weights == sorted(weights, reverse=True)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            GlobalOrder("alphabetical")

    def test_unseen_keys_sort_first(self, figure1_config):
        order = GlobalOrder()
        _, seen = generate_pebbles(("coffee",), figure1_config)
        order.add_record_pebbles(seen)
        _, unseen = generate_pebbles(("zebra",), figure1_config)
        ordered = order.sort_pebbles(list(seen) + list(unseen))
        assert order.frequency(ordered[0].key) == 0


class TestPartitionBound:
    def test_greedy_cover_prefers_large_segments(self, figure1_config):
        tokens = ("coffee", "shop", "latte")
        segments = segments_for_pebbles(tokens, figure1_config)
        # "coffee shop" (2 tokens) + "latte" -> greedy cover of size 2.
        assert greedy_cover_size(tokens, segments) == 2

    def test_example6_min_partition_size(self, figure1_config):
        # Example 6: GetMinPartitionSize of "espresso cafe Helsinki" returns 3.
        assert min_partition_size(("espresso", "cafe", "helsinki"), figure1_config) == 3

    def test_empty_tokens(self, figure1_config):
        assert min_partition_size((), figure1_config) == 0

    def test_single_token(self, figure1_config):
        assert min_partition_size(("espresso",), figure1_config) == 1

    @settings(max_examples=30, deadline=None)
    @given(tokens=st.lists(st.sampled_from(["coffee", "shop", "latte", "cake", "apple", "x"]),
                           min_size=1, max_size=6))
    def test_bound_is_positive_and_at_most_token_count(self, figure1_config, tokens):
        bound = min_partition_size(tuple(tokens), figure1_config)
        assert 1 <= bound <= len(tokens)
