"""Tests for the PreparedCollection reuse path and the streaming batch API."""

import pytest

import repro.join.prepared as prepared_module
from repro.core.measures import MeasureConfig
from repro.join import (
    PebbleJoin,
    PreparedCollection,
    SignatureMethod,
    UnifiedJoin,
    build_shared_order,
)
from repro.records import RecordCollection


@pytest.fixture()
def counting_pebbles(monkeypatch):
    """Count calls to generate_pebbles made through the prepared cache."""
    calls = {"count": 0}
    original = prepared_module.generate_pebbles

    def counted(*args, **kwargs):
        calls["count"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(prepared_module, "generate_pebbles", counted)
    return calls


@pytest.fixture()
def counting_signing(monkeypatch):
    """Count calls to sign_record made through the prepared cache."""
    calls = {"count": 0}
    original = prepared_module.sign_record

    def counted(*args, **kwargs):
        calls["count"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(prepared_module, "sign_record", counted)
    return calls


class TestPreparedCollection:
    def test_container_protocol_delegates(self, figure1_config, poi_collections):
        left, _ = poi_collections
        prepared = PreparedCollection.prepare(left, figure1_config)
        assert len(prepared) == len(left)
        assert prepared[0] is left[0]
        assert list(prepared) == list(left)

    def test_pebbles_generated_once_across_engines(
        self, figure1_config, poi_collections, counting_pebbles
    ):
        left, right = poi_collections
        prepared_left = PreparedCollection.prepare(left, figure1_config)
        prepared_right = PreparedCollection.prepare(right, figure1_config)
        assert counting_pebbles["count"] == len(left) + len(right)
        # Two engines at different thresholds reuse the same pebbles.
        for theta in (0.6, 0.8):
            engine = PebbleJoin(figure1_config, theta, tau=2)
            engine.join(prepared_left, prepared_right)
        assert counting_pebbles["count"] == len(left) + len(right)

    def test_signatures_cached_per_configuration(self, figure1_config, poi_collections):
        left, _ = poi_collections
        prepared = PreparedCollection.prepare(left, figure1_config)
        order = prepared.build_order()
        first = prepared.signed(order, 0.7, 2, SignatureMethod.AU_DP)
        again = prepared.signed(order, 0.7, 2, SignatureMethod.AU_DP)
        assert first is again
        other = prepared.signed(order, 0.7, 3, SignatureMethod.AU_DP)
        assert other is not first
        assert prepared.cached_signature_count == 2

    def test_order_mutation_invalidates_signature_cache(
        self, figure1_config, poi_collections
    ):
        left, _ = poi_collections
        prepared = PreparedCollection.prepare(left, figure1_config)
        order = prepared.build_order()
        first = prepared.signed(order, 0.7, 2, SignatureMethod.AU_DP)
        order.add_record_pebbles([])  # extend the order after signing
        assert prepared.signed(order, 0.7, 2, SignatureMethod.AU_DP) is not first

    def test_build_order_cached_per_strategy(self, figure1_config, poi_collections):
        left, _ = poi_collections
        prepared = PreparedCollection.prepare(left, figure1_config)
        assert prepared.build_order("frequency") is prepared.build_order("frequency")
        assert prepared.build_order("weight") is not prepared.build_order("frequency")

    def test_shared_order_cached_and_mirrored(self, figure1_config, poi_collections):
        left, right = poi_collections
        prepared_left = PreparedCollection.prepare(left, figure1_config)
        prepared_right = PreparedCollection.prepare(right, figure1_config)
        order = prepared_left.shared_order_with(prepared_right)
        assert prepared_left.shared_order_with(prepared_right) is order
        assert prepared_right.shared_order_with(prepared_left) is order
        assert prepared_left.shared_order_with(prepared_left) is prepared_left.build_order()

    def test_repeated_prepared_joins_sign_once(
        self, figure1_config, poi_collections, counting_signing
    ):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        prepared_left = engine.prepare(left)
        prepared_right = engine.prepare(right)
        first = engine.join(prepared_left, prepared_right)
        signed_after_first = counting_signing["count"]
        second = engine.join(prepared_left, prepared_right)
        # The second two-sided join reuses the cached shared order and hence
        # the cached signatures — no re-signing.
        assert counting_signing["count"] == signed_after_first
        assert second.pair_ids() == first.pair_ids()

    def test_shared_order_cache_does_not_pin_partner(self, figure1_config, poi_collections):
        import gc
        import weakref

        left, right = poi_collections
        prepared_left = PreparedCollection.prepare(left, figure1_config)
        prepared_right = PreparedCollection.prepare(right, figure1_config)
        prepared_left.shared_order_with(prepared_right)
        partner_ref = weakref.ref(prepared_right)
        del prepared_right
        gc.collect()
        # The mirrored cache holds the partner weakly: it must be collectable.
        assert partner_ref() is None

    def test_dead_partner_purges_shared_order_and_signatures(
        self, figure1_config, poi_collections
    ):
        import gc

        left, right = poi_collections
        prepared_left = PreparedCollection.prepare(left, figure1_config)
        prepared_right = PreparedCollection.prepare(right, figure1_config)
        order = prepared_left.shared_order_with(prepared_right)
        prepared_left.signed(order, 0.7, 2, SignatureMethod.AU_DP)
        assert prepared_left.cached_signature_count == 1
        del prepared_right, order
        gc.collect()
        # The weakref callback dropped both the shared-order entry and the
        # signatures signed under it — they could never be cache-hit again.
        assert prepared_left._shared_orders == {}
        assert prepared_left.cached_signature_count == 0

    def test_clear_caches_releases_derived_state(self, figure1_config, poi_collections):
        left, _ = poi_collections
        prepared = PreparedCollection.prepare(left, figure1_config)
        order = prepared.build_order()
        prepared.signed(order, 0.7, 2, SignatureMethod.AU_DP)
        assert prepared.cached_signature_count == 1
        prepared.clear_caches()
        assert prepared.cached_signature_count == 0
        # Pebbles survive: re-signing works without re-preparing.
        fresh_order = prepared.build_order()
        assert prepared.signed(fresh_order, 0.7, 2, SignatureMethod.AU_DP)

    def test_dead_order_id_reuse_does_not_return_stale_signatures(
        self, figure1_config, poi_collections
    ):
        """A garbage-collected order whose id() is reused by a new order must
        not satisfy the signature cache (the cache holds the order it signed
        under and checks identity)."""
        import gc

        left, right = poi_collections
        prepared = PreparedCollection.prepare(left, figure1_config)
        other = PreparedCollection.prepare(right, figure1_config)
        order = build_shared_order([prepared, other])
        stale = prepared.signed(order, 0.7, 2, SignatureMethod.AU_DP)
        mutations = order.mutation_count
        del order
        gc.collect()
        # A fresh order with (potentially) the same id and mutation count.
        solo = prepared.build_order()
        while solo.mutation_count < mutations:
            solo.add_record_pebbles([])
        fresh = prepared.signed(solo, 0.7, 2, SignatureMethod.AU_DP)
        assert fresh is not stale

    def test_shared_order_deduplicates_collections(self, figure1_config, poi_collections):
        left, _ = poi_collections
        prepared = PreparedCollection.prepare(left, figure1_config)
        shared = build_shared_order([prepared, prepared])
        single = build_shared_order([prepared])
        assert len(shared) == len(single)
        sample_key = next(iter(shared._frequencies))
        assert shared.frequency(sample_key) == single.frequency(sample_key)

    def test_prepared_join_equals_raw_join(self, figure1_config, poi_collections):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        raw = engine.join(left, right)
        prepared = engine.join(engine.prepare(left), engine.prepare(right))
        assert prepared.pair_ids() == raw.pair_ids()
        assert prepared.statistics.candidate_count == raw.statistics.candidate_count
        assert prepared.statistics.processed_pairs == raw.statistics.processed_pairs

    def test_config_binding_is_checked(self, figure1_config, poi_collections):
        left, right = poi_collections
        other_config = MeasureConfig.from_codes("J")
        prepared = PreparedCollection.prepare(left, other_config)
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        with pytest.raises(ValueError):
            engine.join(prepared, right)


class TestSigningReuse:
    def test_auto_tau_signs_full_collections_exactly_once(
        self, figure1_rules, figure1_taxonomy, poi_collections, counting_signing
    ):
        left, right = poi_collections
        join = UnifiedJoin(
            rules=figure1_rules,
            taxonomy=figure1_taxonomy,
            theta=0.7,
            tau="auto",
            sample_probability=0.5,
            tau_universe=(1, 2),
            recommendation_seed=7,
        )
        result = join.join(left, right)
        assert join.last_recommendation is not None
        # The recommendation signed every record once at max(tau_universe)
        # and the final join reused those signatures from the prepared cache.
        assert counting_signing["count"] == len(left) + len(right)
        assert result.statistics.tau == join.last_recommendation.best_tau

    def test_auto_tau_self_join_signs_once(
        self, figure1_rules, figure1_taxonomy, counting_signing
    ):
        collection = RecordCollection.from_strings(
            ["coffee shop", "cafe", "coffee shop", "museum", "apple cake", "gateau"]
        )
        join = UnifiedJoin(
            rules=figure1_rules,
            taxonomy=figure1_taxonomy,
            theta=0.8,
            tau="auto",
            sample_probability=0.5,
            tau_universe=(1, 2),
            recommendation_seed=7,
        )
        result = join.join(collection)
        assert counting_signing["count"] == len(collection)
        for pair in result.pairs:
            assert pair.left_id < pair.right_id

    def test_signing_tau_below_filter_tau_rejected(self, figure1_config, poi_collections):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=3)
        with pytest.raises(ValueError):
            engine.join(left, right, signing_tau=2)

    def test_signing_tau_above_filter_tau_is_lossless(
        self, figure1_config, poi_collections
    ):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        plain = engine.join(left, right)
        oversigned = engine.join(left, right, signing_tau=4)
        # τ'-signatures guarantee τ' ≥ τ overlaps for θ-similar pairs, so the
        # verified result set is unchanged (candidates may differ).
        assert oversigned.pair_ids() == plain.pair_ids()


class TestJoinBatches:
    def test_batches_union_equals_join(self, figure1_config, poi_collections):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        full = engine.join(left, right)
        streamed = set()
        candidate_total = 0
        processed_total = 0
        batches = list(engine.join_batches(left, right, batch_size=2))
        for batch in batches:
            streamed.update((pair.left_id, pair.right_id) for pair in batch.pairs)
            candidate_total += batch.candidate_count
            processed_total += batch.processed_pairs
        assert streamed == full.pair_ids()
        assert candidate_total == full.statistics.candidate_count
        assert processed_total == full.statistics.processed_pairs
        assert len(batches) == 2

    def test_self_join_batches(self, figure1_config):
        collection = RecordCollection.from_strings(
            ["coffee shop", "cafe", "coffee shop", "museum"]
        )
        engine = PebbleJoin(figure1_config, 0.9, tau=1)
        full = engine.self_join(collection)
        streamed = set()
        for batch in engine.join_batches(collection, batch_size=1):
            streamed.update((pair.left_id, pair.right_id) for pair in batch.pairs)
        assert streamed == full.pair_ids()

    def test_worker_pool_verification_matches(self, figure1_config, poi_collections):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        sequential = set()
        for batch in engine.join_batches(left, right, batch_size=2):
            sequential.update((pair.left_id, pair.right_id) for pair in batch.pairs)
        threaded = set()
        for batch in engine.join_batches(left, right, batch_size=2, verify_workers=2):
            threaded.update((pair.left_id, pair.right_id) for pair in batch.pairs)
        assert threaded == sequential

    def test_invalid_parameters(self, figure1_config, poi_collections):
        left, right = poi_collections
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        with pytest.raises(ValueError):
            list(engine.join_batches(left, right, batch_size=0))
        with pytest.raises(ValueError):
            list(engine.join_batches(left, right, verify_workers=-1))

    def test_unified_join_batches(self, figure1_rules, figure1_taxonomy, poi_collections):
        left, right = poi_collections
        join = UnifiedJoin(
            rules=figure1_rules, taxonomy=figure1_taxonomy, theta=0.7, tau=2
        )
        full = join.join(left, right)
        streamed = set()
        for batch in join.join_batches(left, right, batch_size=3):
            streamed.update((pair.left_id, pair.right_id) for pair in batch.pairs)
        assert streamed == full.pair_ids()
