"""Tests for signature selection (U-Filter, AU-heuristic, AU-DP)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.measures import Measure
from repro.join.global_order import GlobalOrder
from repro.join.pebbles import generate_pebbles
from repro.join.partition_bound import min_partition_size
from repro.join.signatures import (
    SignatureMethod,
    accumulated_similarity_profile,
    select_signature_prefix,
    sign_record,
)
from repro.records import Record, RecordCollection


def _signed(record_text, config, theta, tau, method, corpus=None):
    """Helper: sign a single record against an order built from a small corpus."""
    corpus_texts = corpus or [record_text]
    collection = RecordCollection.from_strings(corpus_texts + [record_text])
    order = GlobalOrder()
    for record in collection:
        _, pebbles = generate_pebbles(record.tokens, config)
        order.add_record_pebbles(pebbles)
    target = collection[len(collection) - 1]
    return sign_record(target, config, order, theta, tau=tau, method=method)


class TestAccumulatedSimilarity:
    def test_profile_is_monotone_decreasing(self, figure1_config):
        _, pebbles = generate_pebbles(("espresso", "cafe", "helsinki"), figure1_config)
        order = GlobalOrder()
        order.add_record_pebbles(pebbles)
        sorted_pebbles = order.sort_pebbles(pebbles)
        profile = accumulated_similarity_profile(sorted_pebbles, 3)
        for i in range(len(profile) - 1):
            assert profile[i] >= profile[i + 1] - 1e-12

    def test_full_suffix_counts_every_segment_once(self, figure1_config):
        # With all pebbles removed, AS equals the sum over segments of the best
        # single-measure weight mass, which is >= 1 per segment here.
        _, pebbles = generate_pebbles(("espresso", "cafe", "helsinki"), figure1_config)
        profile = accumulated_similarity_profile(pebbles, 3)
        assert profile[0] >= 3.0 - 1e-9


class TestSignaturePrefixSelection:
    def test_u_filter_keeps_prefix_that_blocks_removal(self, figure1_config):
        signed = _signed("espresso cafe helsinki", figure1_config, 0.8, 1,
                         SignatureMethod.U_FILTER)
        # Example 6 keeps 7 of 23 pebbles under a corpus-frequency order; with
        # our tiny corpus the exact count differs but must be a proper prefix.
        assert 0 < signed.signature_length < len(signed.pebbles)

    def test_higher_tau_never_shortens_signature(self, figure1_config):
        lengths = {}
        for tau in (1, 2, 3, 4):
            signed = _signed("espresso cafe helsinki", figure1_config, 0.8, tau,
                             SignatureMethod.AU_HEURISTIC)
            lengths[tau] = signed.signature_length
        assert lengths[1] <= lengths[2] <= lengths[3] <= lengths[4]

    def test_dp_signature_never_longer_than_heuristic(self, figure1_config):
        for tau in (2, 3, 4):
            heuristic = _signed("espresso cafe helsinki", figure1_config, 0.8, tau,
                                SignatureMethod.AU_HEURISTIC)
            dp = _signed("espresso cafe helsinki", figure1_config, 0.8, tau,
                         SignatureMethod.AU_DP)
            assert dp.signature_length <= heuristic.signature_length

    def test_higher_theta_shortens_or_keeps_signature(self, figure1_config):
        low = _signed("espresso cafe helsinki", figure1_config, 0.7, 1,
                      SignatureMethod.U_FILTER)
        high = _signed("espresso cafe helsinki", figure1_config, 0.95, 1,
                       SignatureMethod.U_FILTER)
        assert high.signature_length <= low.signature_length

    def test_invalid_inputs(self, figure1_config):
        _, pebbles = generate_pebbles(("cafe",), figure1_config)
        with pytest.raises(ValueError):
            select_signature_prefix(pebbles, 1, 1, 1.5)
        with pytest.raises(ValueError):
            select_signature_prefix(pebbles, 1, 1, 0.8, tau=0)
        with pytest.raises(ValueError):
            select_signature_prefix(pebbles, 1, 1, 0.8, method="magic")

    def test_empty_pebbles(self, figure1_config):
        assert select_signature_prefix([], 0, 0, 0.8) == 0

    def test_u_filter_ignores_tau(self, figure1_config):
        one = _signed("espresso cafe helsinki", figure1_config, 0.8, 1, SignatureMethod.U_FILTER)
        five = _signed("espresso cafe helsinki", figure1_config, 0.8, 5, SignatureMethod.U_FILTER)
        assert one.signature_length == five.signature_length

    @settings(max_examples=20, deadline=None)
    @given(theta=st.floats(min_value=0.5, max_value=0.99))
    def test_signature_is_prefix_of_sorted_pebbles(self, figure1_config, theta):
        signed = _signed("coffee shop latte helsingki", figure1_config, theta, 2,
                         SignatureMethod.AU_DP)
        assert signed.signature == signed.pebbles[: signed.signature_length]

    def test_signed_record_properties(self, figure1_config):
        signed = _signed("coffee shop latte", figure1_config, 0.8, 2, SignatureMethod.AU_DP)
        assert signed.min_partition_size == min_partition_size(
            ("coffee", "shop", "latte"), figure1_config
        )
        assert all(key in {p.key for p in signed.pebbles} for key in signed.signature_keys)


class TestFilterCorrectness:
    """The central safety property: filtering must not lose similar pairs.

    Lemma 1 / Lemma 2 guarantee that, for moderate τ, any pair with
    USIM ≥ θ shares at least τ signature pebbles.  We verify this against
    brute-force verification on the tiny synthetic dataset.
    """

    @pytest.mark.parametrize("method,tau", [
        (SignatureMethod.U_FILTER, 1),
        (SignatureMethod.AU_HEURISTIC, 2),
        (SignatureMethod.AU_DP, 2),
        (SignatureMethod.AU_DP, 3),
    ])
    def test_no_false_negatives_against_brute_force(self, tiny_dataset, method, tau):
        from repro.core.approximation import approximate_usim
        from repro.evaluation.experiments import config_for
        from repro.join.aufilter import PebbleJoin

        config = config_for(tiny_dataset)
        theta = 0.75
        left = tiny_dataset.records.subset(range(0, 30))
        right = tiny_dataset.records.subset(range(30, 60))

        engine = PebbleJoin(config, theta, tau=tau, method=method)
        result = engine.join(left, right)
        found = result.pair_ids()

        # Brute force: verify every pair with the same similarity routine.
        expected = set()
        for left_record in left:
            for right_record in right:
                value = approximate_usim(left_record.tokens, right_record.tokens, config).value
                if value >= theta:
                    expected.add((left_record.record_id, right_record.record_id))
        assert expected.issubset(found)
