"""Flat integer encoding: vocabulary, CSR views, and payload transport.

These tests pin the tentpole contracts of :mod:`repro.core.vocab` and
:mod:`repro.join.flat`: interning round-trips every pebble key across all
measure configurations, the flat CSR arrays reconstruct the exact slim
views they replaced, the flat probe loop emits the same candidates as the
dict-based loop, and the shared-memory export/attach cycle reproduces the
state bit-for-bit while leaving ``/dev/shm`` clean.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.measures import MeasureConfig
from repro.core.vocab import Vocabulary
from repro.datasets import TINY_PROFILE, generate_dataset
from repro.join import PebbleJoin
from repro.join.flat import (
    UNKNOWN_KEY,
    FlatJoinState,
    FlatSignatures,
    attach_payload,
    share_payload,
)
from repro.join.parallel import _run_shard_on, _WorkerRuntime, build_shard_plan

MEASURE_CODES = ("J", "S", "T", "TJS")
THETA = 0.55
TAU = 2


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(TINY_PROFILE, seed=47)


def _config(dataset, codes: str) -> MeasureConfig:
    return MeasureConfig.from_codes(
        codes, rules=dataset.rules, taxonomy=dataset.taxonomy, q=3
    )


def _plans(dataset, codes: str, size: int = 32):
    """One flat and one legacy slim-view plan over the same preparation."""
    config = _config(dataset, codes)
    engine = PebbleJoin(config, THETA, tau=TAU)
    prepared = engine.prepare(dataset.records.head(size))
    flat_plan = build_shard_plan(engine, prepared, slim=True)
    legacy_plan = build_shard_plan(engine, prepared, slim=True, flat=False)
    return flat_plan, legacy_plan


def _shard(plan):
    runtime = _WorkerRuntime(plan)
    return _run_shard_on(runtime, (0, plan.probe_count))


class TestVocabulary:
    @pytest.mark.parametrize("codes", MEASURE_CODES)
    def test_round_trips_every_signature_key(self, dataset, codes):
        _, legacy_plan = _plans(dataset, codes)
        keys = [
            key
            for view in legacy_plan.probe_signed
            for key in view.signature_key_sequence
        ]
        vocab = Vocabulary()
        ids = vocab.encode_all(keys)
        assert vocab.decode_all(ids) == keys
        # Interning is idempotent: a second pass grows nothing and assigns
        # the same ids.
        size = len(vocab)
        assert vocab.encode_all(keys) == ids
        assert len(vocab) == size
        for key in keys:
            assert key in vocab
            assert vocab.id_of(key) == vocab.encode(key)

    def test_growth_unknowns_and_negative_decode(self):
        vocab = Vocabulary()
        assert len(vocab) == 0
        first = vocab.encode(("token", "alpha"))
        second = vocab.encode(("token", "beta"))
        assert (first, second) == (0, 1)
        assert vocab.id_of(("token", "missing")) is None
        assert ("token", "missing") not in vocab
        with pytest.raises(IndexError):
            vocab.decode(UNKNOWN_KEY)
        assert list(vocab) == [("token", "alpha"), ("token", "beta")]

    def test_pickle_round_trip_preserves_id_assignment(self):
        vocab = Vocabulary()
        keys = [("a", i % 5) for i in range(20)]
        ids = vocab.encode_all(keys)
        clone = pickle.loads(pickle.dumps(vocab))
        assert len(clone) == len(vocab)
        assert clone.encode_all(keys) == ids
        assert list(clone.keys()) == list(vocab.keys())


class TestFlatSignatures:
    @pytest.mark.parametrize("codes", MEASURE_CODES)
    def test_to_views_reconstructs_slim_views(self, dataset, codes):
        flat_plan, legacy_plan = _plans(dataset, codes)
        flat = flat_plan.flat
        views = flat.probe.to_views(flat_plan.left_prep)
        legacy_views = legacy_plan.probe_signed
        assert len(views) == len(legacy_views)
        for mine, theirs in zip(views, legacy_views):
            assert mine.record.record_id == theirs.record.record_id
            assert tuple(mine.signature_key_sequence) == tuple(
                theirs.signature_key_sequence
            )
            assert mine.signature_length == theirs.signature_length
            assert mine.pebble_count == theirs.pebble_count
            assert mine.min_partition_size == theirs.min_partition_size

    def test_non_growing_probe_maps_unknown_keys_to_sentinel(self):
        vocab = Vocabulary()
        vocab.encode(("q", "known"))

        class _Stub:
            def __init__(self, record_id, keys):
                self.record = type("R", (), {"record_id": record_id})()
                self.signature_key_sequence = keys
                self.pebble_count = len(keys)
                self.min_partition_size = 1

        stub = _Stub(0, (("q", "known"), ("q", "unknown")))
        flat = FlatSignatures.from_signed([stub], vocab, grow=False)
        assert list(flat.key_ids) == [0, UNKNOWN_KEY]
        # The vocabulary did not grow: unknown probe keys stay unmapped.
        assert len(vocab) == 1


class TestFlatProbeEquivalence:
    @pytest.mark.parametrize("codes", MEASURE_CODES)
    def test_flat_shard_matches_dict_shard(self, dataset, codes):
        flat_plan, legacy_plan = _plans(dataset, codes)
        flat_result = _shard(flat_plan)
        legacy_result = _shard(legacy_plan)
        assert flat_result.candidate_count == legacy_result.candidate_count
        assert flat_result.processed_pairs == legacy_result.processed_pairs
        assert [
            (p.left_id, p.right_id, p.similarity) for p in flat_result.pairs
        ] == [(p.left_id, p.right_id, p.similarity) for p in legacy_result.pairs]


class TestPayloadTransport:
    def test_pickle_round_trip_drops_vocab_keeps_results(self, dataset):
        flat_plan, _ = _plans(dataset, "TJS")
        flat = flat_plan.flat
        clone = pickle.loads(pickle.dumps(flat))
        assert clone.vocab is None
        reference = flat.probe_span(
            0, flat.probe_count, flat_plan.requirement,
            probe_is_left=flat_plan.probe_is_left,
            exclude_self_pairs=flat_plan.exclude_self_pairs,
        )
        restored = clone.probe_span(
            0, clone.probe_count, flat_plan.requirement,
            probe_is_left=flat_plan.probe_is_left,
            exclude_self_pairs=flat_plan.exclude_self_pairs,
        )
        assert restored == reference

    def test_share_attach_round_trip_and_cleanup(self, dataset):
        flat_plan, _ = _plans(dataset, "TJS")
        flat = flat_plan.flat
        meta, arrays = flat.export()
        payload = share_payload(meta, arrays)
        try:
            attached_meta, buffers, shm = attach_payload(payload.name)
            try:
                restored = FlatJoinState.restore(attached_meta, buffers)
                reference = flat.probe_span(
                    0, flat.probe_count, flat_plan.requirement,
                    probe_is_left=flat_plan.probe_is_left,
                    exclude_self_pairs=flat_plan.exclude_self_pairs,
                )
                result = restored.probe_span(
                    0, restored.probe_count, flat_plan.requirement,
                    probe_is_left=flat_plan.probe_is_left,
                    exclude_self_pairs=flat_plan.exclude_self_pairs,
                )
                assert result == reference
            finally:
                # Buffers view the segment: drop them before closing it.
                del restored, buffers
                shm.close()
        finally:
            payload.release()
        if os.path.isdir("/dev/shm"):
            assert payload.name.lstrip("/") not in os.listdir("/dev/shm")
        # Releasing twice is a documented no-op.
        payload.release()

    def test_self_join_export_omits_postings_arrays(self, dataset):
        flat_plan, _ = _plans(dataset, "TJS")
        flat = flat_plan.flat
        assert flat.self_keys is not None
        meta, arrays = flat.export()
        assert len(arrays) == len(FlatJoinState._PROBE_FIELDS)
        restored = FlatJoinState.restore(meta, arrays)
        assert list(restored.postings.offsets) == list(flat.postings.offsets)
        assert list(restored.postings.data) == list(flat.postings.data)
