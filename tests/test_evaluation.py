"""Tests for metrics, timing, and the experiment drivers."""

import pytest

from repro.evaluation.metrics import (
    PrecisionRecall,
    classify_pairs,
    evaluate_pair_sets,
    evaluate_similarity_function,
    percentiles,
)
from repro.evaluation.timing import PhaseTimer
from repro.evaluation import experiments
from repro.evaluation.experiments import (
    approximation_accuracy,
    baseline_effectiveness,
    config_for,
    join_time_by_method,
    measure_effectiveness,
    split_dataset,
    tau_tradeoff,
)


class TestPrecisionRecall:
    def test_basic_values(self):
        pr = PrecisionRecall(true_positives=8, false_positives=2, false_negatives=2)
        assert pr.precision == pytest.approx(0.8)
        assert pr.recall == pytest.approx(0.8)
        assert pr.f_measure == pytest.approx(0.8)

    def test_degenerate_cases(self):
        assert PrecisionRecall(0, 0, 0).precision == 1.0
        assert PrecisionRecall(0, 0, 0).recall == 1.0
        assert PrecisionRecall(0, 0, 5).f_measure == 0.0

    def test_as_dict(self):
        d = PrecisionRecall(1, 1, 1).as_dict()
        assert set(d) == {"precision", "recall", "f_measure"}

    def test_evaluate_pair_sets(self):
        pr = evaluate_pair_sets({(1, 2), (3, 4)}, {(1, 2), (5, 6)})
        assert pr.true_positives == 1
        assert pr.false_positives == 1
        assert pr.false_negatives == 1


class TestClassifyPairs:
    def test_perfect_similarity_function(self, tiny_truth):
        def oracle(left, right):
            return 1.0 if any(
                pair.left is left and pair.right is right and pair.is_similar
                for pair in tiny_truth.pairs
            ) else 0.0

        pr = classify_pairs(tiny_truth, oracle, 0.5)
        assert pr.precision == 1.0
        assert pr.recall == 1.0

    def test_threshold_sweep(self, tiny_truth):
        results = evaluate_similarity_function(tiny_truth, lambda a, b: 0.6, [0.5, 0.7])
        assert results[0.5].recall == 1.0   # everything predicted similar
        assert results[0.7].recall == 0.0   # nothing predicted similar


class TestPercentiles:
    def test_known_values(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        result = percentiles(values, (0, 50, 100))
        assert result[0] == 1.0
        assert result[50] == 3.0
        assert result[100] == 5.0

    def test_empty_values(self):
        assert percentiles([], (50,)) == {50: 0.0}

    def test_invalid_point(self):
        with pytest.raises(ValueError):
            percentiles([1.0], (150,))


class TestPhaseTimer:
    def test_phases_accumulate(self):
        timer = PhaseTimer()
        with timer.phase("a"):
            pass
        with timer.phase("a"):
            pass
        timer.add("b", 1.5)
        assert timer.seconds("a") >= 0.0
        assert timer.seconds("b") == 1.5
        assert timer.total >= 1.5
        assert list(timer.as_dict()) == ["a", "b"]

    def test_unknown_phase_is_zero(self):
        assert PhaseTimer().seconds("missing") == 0.0


class TestExperimentDrivers:
    """Smoke tests: the drivers behind each table/figure run on tiny inputs."""

    def test_measure_effectiveness_shape(self, tiny_dataset, tiny_truth):
        result = measure_effectiveness(
            tiny_dataset, tiny_truth, thresholds=(0.7,), measure_codes=("J", "TJS")
        )
        assert set(result.scores) == {"J", "TJS"}
        tjs = result.row("TJS", 0.7)
        j_only = result.row("J", 0.7)
        # The unified measure must not lose recall relative to Jaccard alone.
        assert tjs.recall >= j_only.recall

    def test_baseline_effectiveness_shape(self, tiny_dataset, tiny_truth):
        scores = baseline_effectiveness(tiny_dataset, tiny_truth, thresholds=(0.7,))
        assert set(scores) == {"K-Join", "AdaptJoin", "PKduck", "Combination", "Ours"}
        assert scores["Ours"][0.7].recall >= scores["Combination"][0.7].recall - 1e-9

    def test_approximation_accuracy_runs(self, tiny_dataset, tiny_truth):
        result = approximation_accuracy(tiny_dataset, tiny_truth, max_pairs=15)
        for k, points in result.per_k.items():
            assert k >= 1
            for value in points.values():
                assert 0.0 <= value <= 1.0

    def test_tau_tradeoff_and_join_time(self, tiny_dataset):
        left, right = split_dataset(tiny_dataset, 20, 20)
        config = config_for(tiny_dataset)
        cells = tau_tradeoff(left, right, config, thetas=(0.85,), taus=(1, 2))
        assert len(cells) == 2
        assert cells[0].avg_signature_length <= cells[1].avg_signature_length

        results = join_time_by_method(left, right, config, thetas=(0.85,), tau=2)
        assert set(results) == set(experiments.SignatureMethod.ALL)

    def test_split_dataset_disjoint(self, tiny_dataset):
        left, right = split_dataset(tiny_dataset, 30, 30)
        left_texts = set(left.texts())
        right_texts = set(right.texts())
        # Split halves come from disjoint id ranges (texts may rarely collide).
        assert len(left) == 30 and len(right) == 30
