"""Tests for the baseline join algorithms (AdaptJoin, K-Join, PKduck, Combination)."""

import pytest

from repro.baselines import AdaptJoin, CombinationJoin, KJoin, PKDuck
from repro.records import Record, RecordCollection


@pytest.fixture
def poi_left():
    return RecordCollection.from_strings(
        ["coffee shop latte Helsingki", "pizza place new york", "grand hotel paris"]
    )


@pytest.fixture
def poi_right():
    return RecordCollection.from_strings(
        ["espresso cafe Helsinki", "pizza place ny", "louvre museum paris"]
    )


class TestAdaptJoin:
    def test_finds_typo_pairs(self):
        left = RecordCollection.from_strings(["helsingki city", "random words"])
        right = RecordCollection.from_strings(["helsinki city", "other tokens"])
        result = AdaptJoin(0.5).join(left, right)
        assert (0, 0) in result.pair_ids()
        assert (1, 1) not in result.pair_ids()

    def test_similarity_is_gram_jaccard(self):
        join = AdaptJoin(0.5)
        left = Record(0, "helsinki", ("helsinki",))
        right = Record(0, "helsinki", ("helsinki",))
        assert join.similarity(left, right) == 1.0

    def test_adaptive_scheme_bounds(self):
        with pytest.raises(ValueError):
            AdaptJoin(0.8, max_scheme=0)

    def test_higher_threshold_fewer_results(self, poi_left, poi_right):
        low = AdaptJoin(0.2).join(poi_left, poi_right).pair_ids()
        high = AdaptJoin(0.9).join(poi_left, poi_right).pair_ids()
        assert high.issubset(low)

    def test_cannot_see_synonym_or_taxonomy_pairs(self, figure1_taxonomy):
        left = RecordCollection.from_strings(["coffee shop"])
        right = RecordCollection.from_strings(["cafe"])
        result = AdaptJoin(0.7).join(left, right)
        assert len(result) == 0


class TestKJoin:
    def test_finds_taxonomy_pairs(self, figure1_taxonomy):
        left = RecordCollection.from_strings(["latte"])
        right = RecordCollection.from_strings(["espresso"])
        result = KJoin(0.7, figure1_taxonomy).join(left, right)
        assert (0, 0) in result.pair_ids()
        assert result.pairs[0].similarity == pytest.approx(0.8)

    def test_misses_pure_typo_pairs(self, figure1_taxonomy):
        left = RecordCollection.from_strings(["helsingki"])
        right = RecordCollection.from_strings(["helsinki"])
        result = KJoin(0.7, figure1_taxonomy).join(left, right)
        assert len(result) == 0

    def test_exact_tokens_outside_taxonomy_count(self, figure1_taxonomy):
        left = RecordCollection.from_strings(["latte bar"])
        right = RecordCollection.from_strings(["espresso bar"])
        join = KJoin(0.7, figure1_taxonomy)
        value = join.similarity(left[0], right[0])
        assert value == pytest.approx((0.8 + 1.0) / 2)

    def test_signature_contains_deep_ancestors_only(self, figure1_taxonomy):
        join = KJoin(0.9, figure1_taxonomy)
        record = Record(0, "espresso", ("espresso",))
        signature = join.signatures(record)
        # At θ=0.9 and depth 5, only ancestors at depth >= ceil(4.5)=5 qualify.
        assert len(signature) == 1


class TestPKDuck:
    def test_finds_synonym_pairs(self, figure1_rules):
        left = RecordCollection.from_strings(["coffee shop downtown"])
        right = RecordCollection.from_strings(["cafe downtown"])
        result = PKDuck(0.9, figure1_rules).join(left, right)
        assert (0, 0) in result.pair_ids()

    def test_derivations_include_original(self, figure1_rules):
        join = PKDuck(0.8, figure1_rules)
        variants = join.derivations(("coffee", "shop", "downtown"))
        assert ("coffee", "shop", "downtown") in variants
        assert ("cafe", "downtown") in variants

    def test_derivation_budget_respected(self, figure1_rules):
        join = PKDuck(0.8, figure1_rules, max_derivations=2)
        variants = join.derivations(("coffee", "shop", "cake", "ny"))
        assert len(variants) <= 2

    def test_misses_taxonomy_pairs(self, figure1_rules):
        left = RecordCollection.from_strings(["latte"])
        right = RecordCollection.from_strings(["espresso"])
        result = PKDuck(0.7, figure1_rules).join(left, right)
        assert len(result) == 0

    def test_invalid_max_derivations(self, figure1_rules):
        with pytest.raises(ValueError):
            PKDuck(0.8, figure1_rules, max_derivations=0)


class TestCombination:
    def test_union_of_members(self, figure1_rules, figure1_taxonomy):
        left = RecordCollection.from_strings(["latte", "coffee shop", "helsingki"])
        right = RecordCollection.from_strings(["espresso", "cafe", "helsinki"])
        combination = CombinationJoin(
            [KJoin(0.6, figure1_taxonomy), PKDuck(0.6, figure1_rules), AdaptJoin(0.6)]
        )
        found = combination.join(left, right).pair_ids()
        assert (0, 0) in found  # taxonomy
        assert (1, 1) in found  # synonym
        assert (2, 2) in found  # typo (gram)

    def test_combination_requires_members(self):
        with pytest.raises(ValueError):
            CombinationJoin([])

    def test_keeps_best_similarity_per_pair(self, figure1_rules, figure1_taxonomy):
        left = RecordCollection.from_strings(["latte"])
        right = RecordCollection.from_strings(["espresso"])
        combination = CombinationJoin([KJoin(0.5, figure1_taxonomy), AdaptJoin(0.5)])
        result = combination.join(left, right)
        assert result.pairs[0].similarity == pytest.approx(0.8)

    def test_cannot_handle_mixed_relation_pair(self, figure1_rules, figure1_taxonomy):
        """The motivating example: a pair mixing typo+synonym+taxonomy relations
        is missed by every single-measure baseline at a moderate threshold."""
        left = RecordCollection.from_strings(["coffee shop latte helsingki"])
        right = RecordCollection.from_strings(["espresso cafe helsinki"])
        theta = 0.7
        combination = CombinationJoin(
            [KJoin(theta, figure1_taxonomy), PKDuck(theta, figure1_rules), AdaptJoin(theta)]
        )
        assert len(combination.join(left, right)) == 0

        from repro.core.measures import MeasureConfig
        from repro.join import PebbleJoin

        config = MeasureConfig.from_codes("TJS", rules=figure1_rules, taxonomy=figure1_taxonomy)
        unified = PebbleJoin(config, theta, tau=1).join(left, right)
        assert (0, 0) in unified.pair_ids()
