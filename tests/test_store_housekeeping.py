"""Store housekeeping: size budget, LRU eviction, the inspection CLI —
plus the engine-level ``PebbleJoin(store=...)`` resolve/persist path."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.measures import MeasureConfig
from repro.join import PebbleJoin
from repro.records import Record, RecordCollection
from repro.search import SimilarityIndex
from repro.store import PreparedStore
from repro.store.__main__ import main as store_cli, parse_budget


@pytest.fixture()
def small_config():
    return MeasureConfig.from_codes("J", q=2)


def _collection(seed_texts):
    return RecordCollection.from_strings(list(seed_texts))


def _age(path, seconds):
    """Backdate an artifact's mtime (the eviction recency signal)."""
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


# --------------------------------------------------------------------- #
# listing and eviction
# --------------------------------------------------------------------- #
def test_artifacts_lists_both_kinds(tmp_path, small_config):
    store = PreparedStore(tmp_path)
    store.prepare(_collection(["alpha beta", "beta gamma"]), small_config)
    index = SimilarityIndex(_collection(["alpha beta"]), small_config, theta=0.6)
    index.snapshot(store)
    (tmp_path / "not-an-artifact.txt").write_text("ignored")

    listing = store.artifacts()
    assert {artifact.kind for artifact in listing} == {"prepared", "index"}
    assert all(len(artifact.fingerprint) == 64 for artifact in listing)
    assert store.total_bytes() == sum(a.size_bytes for a in listing)


def test_evict_is_lru_and_load_refreshes_recency(tmp_path, small_config):
    store = PreparedStore(tmp_path)
    old = _collection(["old record text", "second old"])
    new = _collection(["entirely different new text", "another new"])
    store.prepare(old, small_config)
    old_path = store.last_outcome.path
    store.prepare(new, small_config)
    new_path = store.last_outcome.path
    _age(old_path, 3600)
    _age(new_path, 1800)

    # A warm load of the OLD artifact makes it the most recently used.
    fresh_store = PreparedStore(tmp_path)
    fresh_store.prepare(old, small_config)
    assert fresh_store.last_outcome.hit

    budget = max(old_path.stat().st_size, new_path.stat().st_size)
    evicted = fresh_store.evict(budget=budget)
    # The *new* artifact was least recently used and must go first.
    assert [artifact.path for artifact in evicted] == [new_path]
    assert old_path.exists() and not new_path.exists()
    assert fresh_store.total_bytes() <= budget


def test_save_enforces_budget_automatically(tmp_path, small_config):
    unbudgeted = PreparedStore(tmp_path)
    unbudgeted.prepare(_collection(["first artifact text"]), small_config)
    first = unbudgeted.last_outcome.path
    _age(first, 3600)

    budget = first.stat().st_size + 10
    budgeted = PreparedStore(tmp_path, size_budget_bytes=budget)
    budgeted.prepare(_collection(["second, different artifact"]), small_config)
    # The save itself evicted the stale first artifact to fit the budget.
    assert not first.exists()
    assert budgeted.total_bytes() <= budget

    with pytest.raises(ValueError, match="budget"):
        unbudgeted.evict()
    with pytest.raises(ValueError, match="size_budget_bytes"):
        PreparedStore(tmp_path, size_budget_bytes=-1)


# --------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------- #
def test_cli_lists_and_evicts(tmp_path, small_config, capsys):
    store = PreparedStore(tmp_path)
    store.prepare(_collection(["cli artifact one"]), small_config)
    first = store.last_outcome.path
    _age(first, 3600)
    store.prepare(_collection(["cli artifact two, longer text"]), small_config)

    assert store_cli([str(tmp_path)]) == 0
    listing = capsys.readouterr().out
    assert "2 artifact(s)" in listing
    assert "prepared" in listing

    assert store_cli([str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_bytes"] == store.total_bytes()
    assert len(payload["artifacts"]) == 2

    budget = store.last_outcome.path.stat().st_size
    assert store_cli([str(tmp_path), "--evict", "--budget", str(budget)]) == 0
    out = capsys.readouterr().out
    assert "evicted 1 artifact(s)" in out
    assert not first.exists()

    with pytest.raises(SystemExit):
        store_cli([str(tmp_path), "--evict"])  # --evict requires --budget


def test_cli_refuses_nonexistent_root(tmp_path):
    with pytest.raises(SystemExit):
        store_cli([str(tmp_path / "no-such-store")])
    # Inspection must not have conjured the directory into existence.
    assert not (tmp_path / "no-such-store").exists()


def test_cli_budget_suffixes():
    assert parse_budget("123") == 123
    assert parse_budget("2K") == 2048
    assert parse_budget("1m") == 1024**2
    assert parse_budget("3G") == 3 * 1024**3
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        parse_budget("ten")
    with pytest.raises(argparse.ArgumentTypeError):
        parse_budget("-5")


def test_cli_runs_as_module(tmp_path):
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro.store", str(tmp_path)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    assert result.returncode == 0
    assert "store is empty" in result.stdout


# --------------------------------------------------------------------- #
# store-backed PebbleJoin (engine-level resolve + persist-back)
# --------------------------------------------------------------------- #
def test_engine_store_resolves_and_persists(tmp_path, small_config):
    texts = [
        "alpha beta gamma", "beta gamma delta", "gamma delta epsilon",
        "delta epsilon zeta", "alpha beta", "epsilon zeta",
    ]
    collection = _collection(texts)
    cold_store = PreparedStore(tmp_path)
    cold_engine = PebbleJoin(small_config, 0.6, tau=1, store=cold_store)
    cold = cold_engine.join(collection)
    assert not cold_store.last_outcome.hit  # cold: built and persisted

    # A fresh store instance = a new process: preparation loads from disk
    # and the join's signing is a cache hit against persisted signatures.
    warm_store = PreparedStore(tmp_path)
    warm_engine = PebbleJoin(small_config, 0.6, tau=1, store=warm_store)
    warm = warm_engine.join(_collection(texts))
    assert warm_store.last_outcome.hit
    assert [(p.left_id, p.right_id, p.similarity) for p in warm.pairs] == [
        (p.left_id, p.right_id, p.similarity) for p in cold.pairs
    ]
    # The warm artifact already carried the signing: nothing new to persist,
    # and the signing stage collapses to a cache hit.
    prepared = warm_store.prepare(_collection(texts), small_config)
    assert prepared.cached_signature_count >= 1


def test_engine_store_join_batches_persists_on_exhaustion(tmp_path, small_config):
    texts = ["alpha beta gamma", "beta gamma delta", "alpha beta", "gamma delta"]
    store = PreparedStore(tmp_path)
    engine = PebbleJoin(small_config, 0.6, tau=1, store=store)
    batches = engine.join_batches(_collection(texts), batch_size=2)
    artifact = store.path_for(store.last_outcome.fingerprint)
    size_before_exhaustion = artifact.stat().st_size
    list(batches)  # exhaust: persist-back fires here
    assert artifact.stat().st_size > size_before_exhaustion  # signatures rode in

    warm = PreparedStore(tmp_path)
    warm_prepared = warm.prepare(_collection(texts), small_config)
    assert warm.last_outcome.hit
    assert warm_prepared.cached_signature_count >= 1


def test_engine_store_process_executor_roundtrip(tmp_path, small_config):
    texts = [
        "alpha beta gamma", "beta gamma delta", "gamma delta epsilon",
        "delta epsilon zeta",
    ]
    store = PreparedStore(tmp_path)
    engine = PebbleJoin(small_config, 0.6, tau=1, store=store)
    serial = PebbleJoin(small_config, 0.6, tau=1).join(_collection(texts))
    pooled = engine.join(_collection(texts), executor="process", workers=2)
    assert [(p.left_id, p.right_id, p.similarity) for p in pooled.pairs] == [
        (p.left_id, p.right_id, p.similarity) for p in serial.pairs
    ]
    # The raw side resolved through the store on the way in.
    assert store.last_outcome is not None


def test_extended_collection_is_not_silently_persisted(tmp_path, small_config):
    """A store-managed collection mutated in place stops being managed."""
    store = PreparedStore(tmp_path)
    prepared = store.prepare(_collection(["alpha beta", "beta gamma"]), small_config)
    assert store.manages(prepared)
    prepared.extend_with(
        [Record(record_id=2, text="gamma delta", tokens=("gamma", "delta"))]
    )
    assert not store.manages(prepared)
    # An explicit save re-fingerprints the new content instead of
    # clobbering the old artifact under a stale key.
    path = store.save(prepared)
    assert path != store.path_for(
        store.artifacts()[0].fingerprint
    ) or len(store.artifacts()) == 2
    assert len(store.artifacts()) == 2
