"""The online similarity-search index: identity with batch joins.

The contract under test is bit-identity: every query answer — threshold,
top-k, batched, member or external probe, before and after arbitrary
add/remove churn — must equal the corresponding full batch join restricted
to the probe record, similarity values included.  The randomized suites
sweep measures (J/S/T/TJS), thresholds, overlap constraints, and mutation
histories.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.measures import MeasureConfig
from repro.datasets import TINY_PROFILE, generate_dataset
from repro.join import PebbleJoin
from repro.records import Record, RecordCollection
from repro.search import SimilarityIndex
from repro.store import PreparedStore


@pytest.fixture(scope="module")
def search_dataset():
    return generate_dataset(TINY_PROFILE, count=60, seed=911)


def _config(dataset, codes: str, q: int = 3) -> MeasureConfig:
    return MeasureConfig.from_codes(
        codes, rules=dataset.rules, taxonomy=dataset.taxonomy, q=q
    )


def _selfjoin_rows(engine: PebbleJoin, collection):
    """The full self-join as per-record rows: id -> {partner: similarity}."""
    result = engine.join(engine.prepare(collection))
    rows = {record.record_id: {} for record in collection}
    for pair in result.pairs:
        rows[pair.left_id][pair.right_id] = pair.similarity
        rows[pair.right_id][pair.left_id] = pair.similarity
    return rows


def _member_rows(index: SimilarityIndex, **query_kwargs):
    return {
        record_id: {
            match.record_id: match.similarity
            for match in index.query_member(record_id, **query_kwargs).matches
        }
        for record_id in index.live_ids()
    }


# --------------------------------------------------------------------- #
# query identity with batch joins
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("codes", ["J", "S", "T", "TJS"])
def test_member_query_matches_full_selfjoin(search_dataset, codes):
    """Every member's query row equals its row of the full self-join."""
    rng = random.Random(hash(codes) & 0xFFFF)
    theta = rng.choice([0.5, 0.6, 0.7])
    tau = rng.choice([1, 2])
    config = _config(search_dataset, codes)
    collection = search_dataset.records.head(40)
    index = SimilarityIndex(collection, config, theta=theta, tau=tau)
    reference = _selfjoin_rows(PebbleJoin(config, theta, tau=tau), collection)
    assert _member_rows(index) == reference


def test_external_query_matches_two_collection_join(search_dataset):
    """An external probe's answers equal joining {probe} against the corpus."""
    config = _config(search_dataset, "TJS")
    collection = search_dataset.records.head(35)
    probes = search_dataset.records.subset(range(35, 50))
    theta, tau = 0.6, 2
    index = SimilarityIndex(collection, config, theta=theta, tau=tau)
    engine = PebbleJoin(config, theta, tau=tau)
    corpus_prepared = engine.prepare(collection)
    for probe in probes:
        single = RecordCollection([Record(0, probe.text, probe.tokens)])
        reference = {
            pair.right_id: pair.similarity
            for pair in engine.join(engine.prepare(single), corpus_prepared).pairs
        }
        result = index.query(probe)
        assert {m.record_id: m.similarity for m in result.matches} == reference


def test_query_theta_tau_tightening(search_dataset):
    """Raising θ / lowering τ at query time matches a join at those knobs."""
    config = _config(search_dataset, "TJS")
    collection = search_dataset.records.head(40)
    index = SimilarityIndex(collection, config, theta=0.5, tau=3)
    for theta, tau in [(0.7, 3), (0.5, 1), (0.85, 2)]:
        reference = _selfjoin_rows(PebbleJoin(config, theta, tau=tau), collection)
        assert _member_rows(index, theta=theta, tau=tau) == reference


def test_query_rejects_loosened_contract(search_dataset):
    config = _config(search_dataset, "J")
    index = SimilarityIndex(search_dataset.records.head(10), config, theta=0.7, tau=2)
    with pytest.raises(ValueError, match="theta"):
        index.query("anything", theta=0.5)
    with pytest.raises(ValueError, match="tau"):
        index.query("anything", tau=3)
    with pytest.raises(ValueError, match="tau"):
        index.query("anything", tau=0)
    with pytest.raises(KeyError):
        index.query_member(999)


# --------------------------------------------------------------------- #
# top-k
# --------------------------------------------------------------------- #
def test_topk_equals_full_query_head(search_dataset):
    """Top-k is exactly the (-sim, id)-sorted head of the full answer."""
    config = _config(search_dataset, "TJS")
    collection = search_dataset.records.head(45)
    index = SimilarityIndex(collection, config, theta=0.45, tau=1)
    rng = random.Random(3)
    probes = [search_dataset.records[rng.randrange(45, 60)] for _ in range(8)]
    for probe in probes:
        full = index.query(probe)
        expected = sorted(
            ((m.similarity, m.record_id) for m in full.matches),
            key=lambda pair: (-pair[0], pair[1]),
        )
        for k in (1, 2, 5):
            top = index.query_topk(probe, k)
            got = [(m.similarity, m.record_id) for m in top.matches]
            assert got == expected[:k]
            # The early stop may only ever skip work, never answers.
            assert top.bound_skipped >= 0
            assert top.candidate_count == full.candidate_count


def test_topk_validates_k(search_dataset):
    config = _config(search_dataset, "J")
    index = SimilarityIndex(search_dataset.records.head(5), config, theta=0.5)
    with pytest.raises(ValueError, match="k"):
        index.query_topk("anything", 0)


# --------------------------------------------------------------------- #
# batched querying
# --------------------------------------------------------------------- #
def test_query_batch_matches_single_queries(search_dataset):
    config = _config(search_dataset, "TJS")
    collection = search_dataset.records.head(35)
    index = SimilarityIndex(collection, config, theta=0.55, tau=2)
    probes = [record.text for record in search_dataset.records.subset(range(35, 47))]
    batch = index.query_batch(probes)
    grouped = batch.by_probe()
    for position, probe in enumerate(probes):
        single = index.query(probe)
        got = grouped.get(position, [])
        assert [(m.record_id, m.similarity) for m in got] == [
            (m.record_id, m.similarity) for m in single.matches
        ]
    assert batch.probe_count == len(probes)


def test_query_batch_process_executor_identical(search_dataset):
    config = _config(search_dataset, "TJS")
    collection = search_dataset.records.head(30)
    index = SimilarityIndex(collection, config, theta=0.55, tau=2)
    probes = [record.text for record in search_dataset.records.subset(range(30, 42))]
    serial = index.query_batch(probes)
    for workers in (1, 3):
        pooled = index.query_batch(probes, executor="process", workers=workers)
        assert [
            (p.left_id, p.right_id, p.similarity) for p in pooled.pairs
        ] == [(p.left_id, p.right_id, p.similarity) for p in serial.pairs]
        assert pooled.candidate_count == serial.candidate_count
        assert pooled.processed_pairs == serial.processed_pairs
        for name in serial.verification._COUNTERS:
            assert getattr(pooled.verification, name) == getattr(
                serial.verification, name
            )


def test_query_batch_rejects_unknown_executor(search_dataset):
    config = _config(search_dataset, "J")
    index = SimilarityIndex(search_dataset.records.head(5), config, theta=0.5)
    with pytest.raises(ValueError, match="executor"):
        index.query_batch(["x"], executor="thread")


# --------------------------------------------------------------------- #
# incremental maintenance
# --------------------------------------------------------------------- #
def _fresh_reference(index: SimilarityIndex, config, theta, tau):
    """A from-scratch index over the live records, with the id mapping."""
    live = index.live_ids()
    fresh = SimilarityIndex(
        RecordCollection.from_strings([index.prepared[i].text for i in live]),
        config,
        theta=theta,
        tau=tau,
    )
    return fresh, {original: position for position, original in enumerate(live)}


@pytest.mark.parametrize("drift_threshold", [0.05, 0.5, None])
def test_incremental_identity_under_churn(search_dataset, drift_threshold):
    """Interleaved add/remove answers identically to a from-scratch index.

    Swept across drift thresholds so the invariant is checked in all three
    regimes: re-ordering nearly every mutation, re-ordering occasionally,
    and never re-ordering (signing forever under the original frozen
    order).
    """
    theta, tau, codes = 0.55, 2, "TJS"
    config = _config(search_dataset, codes)
    rng = random.Random(101 if drift_threshold is None else int(drift_threshold * 100))
    index = SimilarityIndex(
        search_dataset.records.head(25),
        config,
        theta=theta,
        tau=tau,
        drift_threshold=drift_threshold,
    )
    extra = [record.text for record in search_dataset.records.subset(range(25, 60))]
    for step in range(5):
        added = [extra[rng.randrange(len(extra))] for _ in range(rng.randint(1, 4))]
        new_ids = index.add(added)
        assert all(record_id in index for record_id in new_ids)
        removable = index.live_ids()
        index.remove(rng.sample(removable, rng.randint(1, 3)))

        fresh, mapping = _fresh_reference(index, config, theta, tau)
        reference = _member_rows(fresh)
        got = {
            mapping[record_id]: {
                mapping[m]: sim for m, sim in row.items()
            }
            for record_id, row in _member_rows(index).items()
        }
        assert got == reference
    if drift_threshold == 0.05:
        assert index.reorder_count > 0
    if drift_threshold is None:
        assert index.reorder_count == 0


def test_rebuild_preserves_answers_and_resets_staleness(search_dataset):
    config = _config(search_dataset, "TJS")
    index = SimilarityIndex(
        search_dataset.records.head(20), config, theta=0.55, tau=2,
        drift_threshold=None,
    )
    index.add(["alpha beta", "beta gamma delta"])
    index.remove([3, 7])
    before = _member_rows(index)
    assert index.staleness > 0.0
    index.rebuild()
    assert index.staleness == 0.0
    assert _member_rows(index) == before


def test_remove_validates_ids(search_dataset):
    config = _config(search_dataset, "J")
    index = SimilarityIndex(search_dataset.records.head(6), config, theta=0.5)
    with pytest.raises(KeyError):
        index.remove([2, 2])
    with pytest.raises(KeyError):
        index.remove([99])
    # A failed remove must not have mutated anything.
    assert index.live_count == 6
    index.remove([2])
    with pytest.raises(KeyError):
        index.remove([2])
    assert index.live_count == 5
    assert index.add([]) == []


def test_removed_member_disappears_from_answers(search_dataset):
    config = _config(search_dataset, "TJS")
    collection = search_dataset.records.head(30)
    index = SimilarityIndex(collection, config, theta=0.5, tau=1)
    victim = None
    for record_id in index.live_ids():
        if index.query_member(record_id).matches:
            victim = index.query_member(record_id).matches[0].record_id
            probe = index.prepared[record_id]
            break
    assert victim is not None, "corpus has no similar pair at theta=0.5"
    assert victim in index.query(probe).ids()
    index.remove([victim])
    assert victim not in index.query(probe).ids()


# --------------------------------------------------------------------- #
# persistence
# --------------------------------------------------------------------- #
def test_snapshot_load_roundtrip(search_dataset, tmp_path):
    config = _config(search_dataset, "TJS")
    index = SimilarityIndex(
        search_dataset.records.head(25), config, theta=0.55, tau=2
    )
    index.add(["some brand new record text"])
    index.remove([5])
    store = PreparedStore(tmp_path / "store")
    path = index.snapshot(store)
    assert path.exists()
    fingerprint = index.content_fingerprint()

    # A fresh store instance over the same directory = a service restart.
    restarted = SimilarityIndex.load(PreparedStore(tmp_path / "store"), fingerprint)
    assert restarted.live_ids() == index.live_ids()
    assert _member_rows(restarted) == _member_rows(index)
    probe = "some brand new record"
    assert [
        (m.record_id, m.similarity) for m in restarted.query(probe).matches
    ] == [(m.record_id, m.similarity) for m in index.query(probe).matches]


def test_load_misses_raise_and_tampering_is_rejected(search_dataset, tmp_path):
    config = _config(search_dataset, "J")
    index = SimilarityIndex(search_dataset.records.head(8), config, theta=0.6)
    store = PreparedStore(tmp_path / "store")
    path = index.snapshot(store)
    fingerprint = index.content_fingerprint()

    with pytest.raises(LookupError):
        SimilarityIndex.load(store, "0" * 64)

    # Truncation breaks the pickle: miss, not exception.
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    assert store.load_index(fingerprint) is None

    # A renamed (foreign-fingerprint) artifact is rejected by the header.
    path.write_bytes(blob)
    foreign = "f" * 64
    path.rename(store.index_path_for(foreign))
    assert store.load_index(foreign) is None


def test_index_pickle_roundtrip(search_dataset):
    config = _config(search_dataset, "TJS")
    index = SimilarityIndex(search_dataset.records.head(15), config, theta=0.55)
    clone = pickle.loads(pickle.dumps(index))
    assert _member_rows(clone) == _member_rows(index)
    # Mutations keep working on the unpickled side.
    clone.add(["brand new text"])
    assert clone.live_count == index.live_count + 1


def test_fingerprint_tracks_content_and_contract(search_dataset):
    config = _config(search_dataset, "J")
    collection = search_dataset.records.head(10)
    base = SimilarityIndex(collection, config, theta=0.6, tau=1)
    same = SimilarityIndex(search_dataset.records.head(10), config, theta=0.6, tau=1)
    assert base.content_fingerprint() == same.content_fingerprint()
    other_theta = SimilarityIndex(collection, config, theta=0.7, tau=1)
    assert base.content_fingerprint() != other_theta.content_fingerprint()
    mutated = SimilarityIndex(search_dataset.records.head(10), config, theta=0.6)
    mutated.add(["extra"])
    assert base.content_fingerprint() != mutated.content_fingerprint()
