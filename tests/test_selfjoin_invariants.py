"""Self-join correctness invariants and probe/dual-index filter equivalence."""

import random

import pytest

from repro.estimator.recommend import TauRecommender, recommend_tau
from repro.evaluation.experiments import config_for, split_dataset
from repro.join import (
    PebbleJoin,
    SignatureMethod,
    dual_index_filter_candidates,
)
from repro.records import RecordCollection

VOCAB = (
    "coffee shop cafe cake gateau ny new york espresso latte pizza place "
    "hotel museum bakery paris helsinki grand apple food drinks"
).split()


def _random_collection(rng: random.Random, count: int) -> RecordCollection:
    return RecordCollection.from_strings(
        [" ".join(rng.choices(VOCAB, k=rng.randint(2, 6))) for _ in range(count)]
    )


class TestSelfJoinInvariants:
    @pytest.mark.parametrize("method", SignatureMethod.ALL)
    def test_self_join_equals_deduplicated_cross_join(self, figure1_config, method):
        rng = random.Random(11)
        collection = _random_collection(rng, 30)
        tau = 1 if method == SignatureMethod.U_FILTER else 2
        engine = PebbleJoin(figure1_config, 0.75, tau=tau, method=method)
        self_result = engine.self_join(collection)

        # The same collection joined against an identical copy, deduplicated:
        # drop (i, i) and keep one orientation of every mirrored pair.
        copy = RecordCollection.from_strings(collection.texts())
        cross = engine.join(collection, copy)
        deduplicated = {
            (min(left, right), max(left, right))
            for left, right in cross.pair_ids()
            if left != right
        }
        assert self_result.pair_ids() == deduplicated
        for pair in self_result.pairs:
            assert pair.left_id < pair.right_id

    def test_probe_filter_matches_dual_index_on_random_inputs(self, figure1_config):
        rng = random.Random(29)
        for trial in range(3):
            collection = _random_collection(rng, 25 + 5 * trial)
            other = _random_collection(rng, 18)
            engine = PebbleJoin(
                figure1_config, 0.65, tau=4, method=SignatureMethod.AU_HEURISTIC
            )
            order = engine.build_order(collection, other)
            signed = engine.sign_collection(collection, order)
            signed_other = engine.sign_collection(other, order)
            for tau in (1, 2, 4):
                for exclude in (False, True):
                    probe = engine.filter_candidates(
                        signed, signed, tau=tau, exclude_self_pairs=exclude
                    )
                    reference = dual_index_filter_candidates(
                        signed, signed, requirement=tau, exclude_self_pairs=exclude
                    )
                    assert set(probe.candidates) == set(reference.candidates)
                    assert probe.processed_pairs == reference.processed_pairs
                # Two-collection orientations (index side chosen by footprint,
                # so swapping the arguments exercises both probe directions),
                # with and without the self-pair exclusion.
                for args in ((signed, signed_other), (signed_other, signed)):
                    for exclude in (False, True):
                        probe = engine.filter_candidates(
                            *args, tau=tau, exclude_self_pairs=exclude
                        )
                        reference = dual_index_filter_candidates(
                            *args, requirement=tau, exclude_self_pairs=exclude
                        )
                        assert set(probe.candidates) == set(reference.candidates)
                        assert probe.processed_pairs == reference.processed_pairs

    def test_reordered_signed_input_is_still_correct(self, figure1_config):
        """The ascending-postings early break is an optimization that must be
        detected, not assumed: reordered signed lists (which break the
        ascending-posting invariant) still produce the reference result."""
        rng = random.Random(17)
        collection = _random_collection(rng, 30)
        engine = PebbleJoin(figure1_config, 0.7, tau=2)
        order = engine.build_order(collection)
        signed = engine.sign_collection(collection, order)
        shuffled = list(signed)
        rng.shuffle(shuffled)
        for tau in (1, 2):
            probe = engine.filter_candidates(
                shuffled, shuffled, tau=tau, exclude_self_pairs=True
            )
            reference = dual_index_filter_candidates(
                shuffled, shuffled, requirement=tau, exclude_self_pairs=True
            )
            assert set(probe.candidates) == set(reference.candidates)
            assert probe.processed_pairs == reference.processed_pairs

    def test_multi_tau_pass_matches_per_tau_filters(self, figure1_config):
        rng = random.Random(5)
        collection = _random_collection(rng, 30)
        engine = PebbleJoin(figure1_config, 0.7, tau=3)
        order = engine.build_order(collection)
        signed = engine.sign_collection(collection, order)
        taus = (1, 2, 3)
        multi = engine.filter_candidates_multi(
            signed, signed, taus, exclude_self_pairs=True
        )
        for tau in taus:
            single = engine.filter_candidates(
                signed, signed, tau=tau, exclude_self_pairs=True
            )
            assert multi.candidate_counts[tau] == single.candidate_count
            assert multi.processed_pairs == single.processed_pairs


class TestSelfJoinRecommendation:
    def _factory(self, config, theta):
        def factory(tau: int) -> PebbleJoin:
            return PebbleJoin(config, theta, tau=tau, method=SignatureMethod.AU_HEURISTIC)

        return factory

    def test_selfjoin_estimates_exclude_self_pairs(self, figure1_config):
        """With p = 1 every sample is the full collection, so the candidate
        estimate must equal the true self-join candidate count — not the
        inflated count including (i, i) and mirrored pairs."""
        rng = random.Random(3)
        collection = _random_collection(rng, 25)
        recommender = TauRecommender(
            self._factory(figure1_config, 0.7),
            tau_universe=(1, 2),
            left_probability=1.0,
            right_probability=1.0,
            burn_in=2,
            max_iterations=3,
            seed=1,
        )
        result = recommender.recommend(collection)
        assert result.self_join

        engine = self._factory(figure1_config, 0.7)(2)
        order = engine.build_order(collection)
        signed = engine.sign_collection(collection, order)
        for tau in (1, 2):
            truth = engine.filter_candidates(
                signed, signed, tau=tau, exclude_self_pairs=True
            )
            estimate = result.estimates[tau]
            assert estimate.mean_candidates == pytest.approx(truth.candidate_count)
            assert estimate.mean_processed == pytest.approx(truth.processed_pairs)

    def test_recommendation_deterministic_under_fixed_seed(self, tiny_dataset):
        left, right = split_dataset(tiny_dataset, 30, 30)
        config = config_for(tiny_dataset)
        outcomes = []
        for _ in range(2):
            result = recommend_tau(
                left,
                right,
                config,
                0.85,
                tau_universe=(1, 2, 3),
                sample_probability=0.3,
                burn_in=3,
                max_iterations=6,
                seed=13,
            )
            outcomes.append((result.best_tau, result.iterations, result.sample_sizes))
        assert outcomes[0] == outcomes[1]

    def test_selfjoin_recommendation_deterministic_and_valid(self, tiny_dataset):
        collection = tiny_dataset.records.head(40)
        config = config_for(tiny_dataset)
        results = [
            recommend_tau(
                collection,
                None,
                config,
                0.85,
                tau_universe=(1, 2, 3),
                sample_probability=0.4,
                burn_in=3,
                max_iterations=6,
                seed=21,
            )
            for _ in range(2)
        ]
        assert results[0].best_tau == results[1].best_tau
        assert results[0].sample_sizes == results[1].sample_sizes
        assert results[0].best_tau in (1, 2, 3)
        assert results[0].self_join
        # Self-join iterations draw one sample: sizes are reported mirrored.
        for left_size, right_size in results[0].sample_sizes:
            assert left_size == right_size
