"""Tests for well-defined segments and partitions (Definitions 1–2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.segments import (
    Segment,
    count_partitions,
    enumerate_partitions,
    enumerate_segments,
    singleton_partition,
)
from repro.core.tokenizer import TokenSpan
from repro.synonyms.rules import SynonymRuleSet


class TestEnumerateSegments:
    def test_single_tokens_always_qualify(self):
        segments = enumerate_segments(("a", "b", "c"))
        spans = {(s.span.start, s.span.end) for s in segments}
        assert spans == {(0, 1), (1, 2), (2, 3)}

    def test_synonym_segment_detected(self, figure1_rules):
        segments = enumerate_segments(("coffee", "shop", "latte"), rules=figure1_rules)
        multi = [s for s in segments if len(s) > 1]
        assert len(multi) == 1
        assert multi[0].tokens == ("coffee", "shop")
        assert multi[0].from_synonym

    def test_taxonomy_segment_detected(self, figure1_taxonomy):
        segments = enumerate_segments(("apple", "cake", "bakery"), taxonomy=figure1_taxonomy)
        multi = [s for s in segments if len(s) > 1]
        assert any(s.tokens == ("apple", "cake") and s.from_taxonomy for s in multi)

    def test_paper_example_not_well_defined(self, figure1_rules, figure1_taxonomy):
        # "shop latte" is explicitly not a well-defined segment in the paper.
        segments = enumerate_segments(
            ("coffee", "shop", "latte", "helsingki"),
            rules=figure1_rules, taxonomy=figure1_taxonomy,
        )
        assert not any(s.tokens == ("shop", "latte") for s in segments)

    def test_empty_tokens(self):
        assert enumerate_segments(()) == []

    def test_segment_conflict(self):
        a = Segment(TokenSpan(0, 2), ("x", "y"))
        b = Segment(TokenSpan(1, 3), ("y", "z"))
        c = Segment(TokenSpan(2, 3), ("z",))
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)


class TestEnumeratePartitions:
    def test_paper_example3_partitions(self, figure1_rules, figure1_taxonomy):
        # String S of Figure 1 has exactly two well-defined partitions.
        tokens = ("coffee", "shop", "latte", "helsingki")
        partitions = list(
            enumerate_partitions(tokens, rules=figure1_rules, taxonomy=figure1_taxonomy)
        )
        assert len(partitions) == 2
        sizes = sorted(len(p) for p in partitions)
        assert sizes == [3, 4]

    def test_every_partition_covers_all_tokens_once(self, figure1_rules, figure1_taxonomy):
        tokens = ("apple", "cake", "coffee", "shop")
        for partition in enumerate_partitions(
            tokens, rules=figure1_rules, taxonomy=figure1_taxonomy
        ):
            covered = sorted(pos for seg in partition for pos in seg.span.positions())
            assert covered == list(range(len(tokens)))

    def test_limit_enforced(self, figure1_rules, figure1_taxonomy):
        tokens = ("coffee", "shop", "latte", "helsingki")
        with pytest.raises(RuntimeError):
            list(enumerate_partitions(tokens, rules=figure1_rules,
                                      taxonomy=figure1_taxonomy, limit=1))

    def test_empty_tokens_single_empty_partition(self):
        assert list(enumerate_partitions(())) == [()]

    def test_count_matches_enumeration(self, figure1_rules, figure1_taxonomy):
        tokens = ("coffee", "shop", "apple", "cake")
        count = count_partitions(tokens, rules=figure1_rules, taxonomy=figure1_taxonomy)
        enumerated = len(list(
            enumerate_partitions(tokens, rules=figure1_rules, taxonomy=figure1_taxonomy)
        ))
        assert count == enumerated

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=6))
    def test_count_partitions_with_rules_property(self, tokens):
        rules = SynonymRuleSet.from_pairs([("a b", "x"), ("c d", "y")])
        count = count_partitions(tokens, rules=rules)
        enumerated = len(list(enumerate_partitions(tokens, rules=rules)))
        assert count == enumerated
        assert count >= 1

    def test_singleton_partition(self):
        partition = singleton_partition(("a", "b"))
        assert [seg.tokens for seg in partition] == [("a",), ("b",)]


class TestCachedEnumerationAgreement:
    def test_prepared_segments_match_fresh_enumeration(
        self, figure1_config, poi_collections
    ):
        """Cached (prepared/graph-side) and uncached enumeration agree."""
        from repro.core.graph import GraphSide
        from repro.join import PebbleJoin

        left, right = poi_collections
        prepared = PebbleJoin(figure1_config, 0.8).prepare(left)
        for record in left:
            fresh = enumerate_segments(
                record.tokens,
                rules=figure1_config.rules,
                taxonomy=figure1_config.taxonomy,
            )
            assert list(prepared.prepared_records[record.record_id].segments) == fresh
            side = prepared.graph_side(record.record_id)
            assert list(side.segments) == fresh
            ad_hoc = GraphSide(record.tokens, figure1_config)
            assert list(ad_hoc.segments) == fresh

    def test_singleton_flags_survive_rule_matches(self, figure1_rules):
        """A single token matching a rule side keeps its measure flags.

        Guards the simplified singleton ``setdefault`` in
        ``enumerate_segments``: condition (iii) must never overwrite the
        synonym/taxonomy flags recorded for a single-token span.
        """
        segments = enumerate_segments(("ny", "pizza"), rules=figure1_rules)
        ny = [s for s in segments if s.tokens == ("ny",)]
        assert len(ny) == 1 and ny[0].from_synonym
        pizza = [s for s in segments if s.tokens == ("pizza",)]
        assert len(pizza) == 1 and not pizza[0].from_synonym
