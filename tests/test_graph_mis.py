"""Tests for conflict-graph construction and w-MIS solvers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.graph import build_conflict_graph
from repro.core.measures import MeasureConfig
from repro.core.mis import exact_wmis, greedy_wmis, is_maximal_independent_set, squareimp_wmis
from repro.synonyms.rules import SynonymRuleSet


@pytest.fixture
def example5_graph():
    """The graph of the paper's Example 4/5 (Figure 2), built from its rules.

    S = {a, b, c, d, e}, T = {f, g, h} with six synonym rules; rule R6 is not
    applicable, so the graph has 5 vertices.
    """
    rules = SynonymRuleSet()
    rules.add_text_rule("b c d", "f", 0.3)
    rules.add_text_rule("b c", "f g", 0.13)
    rules.add_text_rule("c d", "f g", 0.27)
    rules.add_text_rule("a", "g", 0.09)
    rules.add_text_rule("d", "h", 0.22)
    rules.add_text_rule("z e f", "g", 0.5)
    config = MeasureConfig.from_codes("S", rules=rules)
    graph = build_conflict_graph(tuple("abcde"), tuple("fgh"), config)
    return graph, config


class TestConflictGraph:
    def test_example5_vertex_count(self, example5_graph):
        graph, _ = example5_graph
        # R1–R5 are applicable, R6 is not.
        assert len(graph) == 5

    def test_conflicting_rules_are_adjacent(self, example5_graph):
        graph, _ = example5_graph
        by_weight = {round(v.weight, 2): v.index for v in graph.vertices}
        r3 = by_weight[0.27]  # {c d} -> {f g}
        r5 = by_weight[0.22]  # {d} -> {h}
        assert graph.are_adjacent(r3, r5)  # share token "d" on the S side

    def test_non_conflicting_rules_not_adjacent(self, example5_graph):
        graph, _ = example5_graph
        by_weight = {round(v.weight, 2): v.index for v in graph.vertices}
        r1 = by_weight[0.3]   # {b c d} -> {f}
        r4 = by_weight[0.09]  # {a} -> {g}
        assert not graph.are_adjacent(r1, r4)

    def test_zero_weight_pairs_dropped(self, figure1_config):
        graph = build_conflict_graph(("xyz",), ("qqq",), figure1_config)
        assert len(graph) == 0

    def test_figure1_graph_has_key_vertices(self, figure1_config):
        graph = build_conflict_graph(
            ("coffee", "shop", "latte", "helsingki"),
            ("espresso", "cafe", "helsinki"),
            figure1_config,
        )
        descriptions = {
            (vertex.left.tokens, vertex.right.tokens): vertex.weight for vertex in graph.vertices
        }
        assert descriptions[(("coffee", "shop"), ("cafe",))] == pytest.approx(1.0)
        assert descriptions[(("latte",), ("espresso",))] == pytest.approx(0.8)
        assert descriptions[(("helsingki",), ("helsinki",))] == pytest.approx(2 / 3)

    def test_is_independent(self, example5_graph):
        graph, _ = example5_graph
        assert graph.is_independent([])
        for vertex in graph.vertices:
            assert graph.is_independent([vertex.index])


class TestWMIS:
    def test_exact_beats_or_equals_greedy(self, example5_graph):
        graph, _ = example5_graph
        exact = exact_wmis(graph)
        greedy = greedy_wmis(graph)
        assert graph.total_weight(exact) >= graph.total_weight(greedy) - 1e-12

    def test_exact_optimal_on_example5(self, example5_graph):
        graph, _ = example5_graph
        exact = exact_wmis(graph)
        # The optimum selects R1 (0.3) and R4 (0.09): R1's T-side {f} and R4's
        # {g} are disjoint, while any set containing R2 or R3 conflicts with
        # R4 on token "g", capping those alternatives at 0.35.  This is the
        # selection the paper's Example 5 reports for Algorithm 1.
        assert graph.total_weight(exact) == pytest.approx(0.39)

    def test_solutions_are_independent_sets(self, example5_graph):
        graph, _ = example5_graph
        for solver in (greedy_wmis, squareimp_wmis, exact_wmis):
            selection = solver(graph)
            assert graph.is_independent(selection)

    def test_solutions_are_maximal(self, example5_graph):
        graph, _ = example5_graph
        assert is_maximal_independent_set(graph, greedy_wmis(graph))
        assert is_maximal_independent_set(graph, squareimp_wmis(graph))

    def test_squareimp_at_least_greedy_weight_on_figure1(self, figure1_config):
        graph = build_conflict_graph(
            ("coffee", "shop", "latte", "helsingki"),
            ("espresso", "cafe", "helsinki"),
            figure1_config,
        )
        greedy = graph.total_weight(greedy_wmis(graph))
        square = graph.total_weight(squareimp_wmis(graph))
        exact = graph.total_weight(exact_wmis(graph))
        assert square >= greedy - 1e-9 or square == pytest.approx(greedy)
        assert exact >= square - 1e-9

    def test_exact_rejects_large_graphs(self, figure1_config):
        graph = build_conflict_graph(
            tuple("abcdefghij"), tuple("abcdefghij"), MeasureConfig.from_codes("J")
        )
        if len(graph) > 8:
            with pytest.raises(ValueError):
                exact_wmis(graph, max_vertices=8)

    def test_greedy_invalid_key(self, example5_graph):
        graph, _ = example5_graph
        with pytest.raises(ValueError):
            greedy_wmis(graph, key="nope")
