"""Tests for the taxonomy tree: construction, LCA, similarity, builders."""

import pytest
from hypothesis import given, strategies as st

from repro.taxonomy import (
    Taxonomy,
    taxonomy_from_edges,
    taxonomy_from_parent_lines,
    taxonomy_from_paths,
)


@pytest.fixture
def coffee_taxonomy():
    taxonomy = Taxonomy("Wikipedia")
    food = taxonomy.add_node("food", taxonomy.root)
    coffee = taxonomy.add_node("coffee", food)
    drinks = taxonomy.add_node("coffee drinks", coffee)
    taxonomy.add_node("espresso", drinks)
    taxonomy.add_node("latte", drinks)
    cake = taxonomy.add_node("cake", food)
    taxonomy.add_node("apple cake", cake)
    return taxonomy


class TestTaxonomyStructure:
    def test_depths(self, coffee_taxonomy):
        assert coffee_taxonomy.root.depth == 1
        assert coffee_taxonomy.find("food").depth == 2
        assert coffee_taxonomy.find("espresso").depth == 5

    def test_find_by_label_and_tokens(self, coffee_taxonomy):
        assert coffee_taxonomy.find("coffee drinks") is not None
        assert coffee_taxonomy.find(("coffee", "drinks")) is not None
        assert coffee_taxonomy.find("tea") is None

    def test_contains(self, coffee_taxonomy):
        assert "latte" in coffee_taxonomy
        assert "tea" not in coffee_taxonomy

    def test_add_node_by_label_parent(self, coffee_taxonomy):
        node = coffee_taxonomy.add_node("mocha", "coffee drinks")
        assert node.depth == 5

    def test_unknown_parent_raises(self, coffee_taxonomy):
        with pytest.raises(KeyError):
            coffee_taxonomy.add_node("x", "does not exist")

    def test_empty_label_rejected(self, coffee_taxonomy):
        with pytest.raises(ValueError):
            coffee_taxonomy.add_node("   ", coffee_taxonomy.root)

    def test_ancestors_chain(self, coffee_taxonomy):
        chain = [node.label for node in coffee_taxonomy.ancestors("espresso")]
        assert chain == ["espresso", "coffee drinks", "coffee", "food", "Wikipedia"]

    def test_label_lengths(self, coffee_taxonomy):
        assert coffee_taxonomy.label_lengths == {1, 2}
        assert coffee_taxonomy.max_label_tokens == 2

    def test_statistics_shape(self, coffee_taxonomy):
        stats = coffee_taxonomy.statistics()
        assert stats["nodes"] == len(coffee_taxonomy)
        assert stats["max_height"] >= stats["avg_height"] >= stats["min_height"]


class TestLCAAndSimilarity:
    def test_lca_of_siblings(self, coffee_taxonomy):
        assert coffee_taxonomy.lca("espresso", "latte").label == "coffee drinks"

    def test_lca_with_ancestor(self, coffee_taxonomy):
        assert coffee_taxonomy.lca("espresso", "coffee").label == "coffee"

    def test_paper_example_latte_espresso(self, coffee_taxonomy):
        # Example 2 (iii): sim_t(latte, espresso) = 4/5.
        assert coffee_taxonomy.similarity("latte", "espresso") == pytest.approx(0.8)

    def test_paper_example_cake_apple_cake(self, coffee_taxonomy):
        # Figure 1: taxonomy similarity of cake vs apple cake = 3/4 = 0.75.
        assert coffee_taxonomy.similarity("cake", "apple cake") == pytest.approx(0.75)

    def test_unmapped_label_gives_zero(self, coffee_taxonomy):
        assert coffee_taxonomy.similarity("tea", "espresso") == 0.0

    def test_similarity_is_symmetric(self, coffee_taxonomy):
        labels = ["espresso", "latte", "cake", "apple cake", "food"]
        for left in labels:
            for right in labels:
                assert coffee_taxonomy.similarity(left, right) == pytest.approx(
                    coffee_taxonomy.similarity(right, left)
                )

    def test_self_similarity_is_one(self, coffee_taxonomy):
        for label in ["espresso", "cake", "food"]:
            assert coffee_taxonomy.similarity(label, label) == 1.0

    def test_matching_spans(self, coffee_taxonomy):
        spans = coffee_taxonomy.matching_spans(("best", "apple", "cake", "here"))
        assert (1, 3) in spans  # "apple cake"
        assert (2, 3) in spans  # "cake"

    def test_ancestor_pebbles(self, coffee_taxonomy):
        pebbles = coffee_taxonomy.ancestor_pebbles_for(("espresso",))
        assert len(pebbles) == 5
        for _, weight in pebbles:
            assert weight == pytest.approx(1 / 5)


class TestBuilders:
    def test_from_paths_shares_prefixes(self):
        taxonomy = taxonomy_from_paths([["food", "coffee"], ["food", "cake"]])
        assert len(taxonomy) == 4  # root + food + coffee + cake
        assert taxonomy.find("coffee").depth == 3

    def test_from_edges(self):
        taxonomy = taxonomy_from_edges([("food", "coffee"), ("coffee", "espresso")])
        assert taxonomy.find("espresso").depth == 4

    def test_from_edges_cycle_raises(self):
        with pytest.raises(ValueError):
            taxonomy_from_edges([("a", "b"), ("b", "a")])

    def test_from_parent_lines(self):
        lines = ["# comment", "food", "coffee\tfood", "espresso\tcoffee", ""]
        taxonomy = taxonomy_from_parent_lines(lines)
        assert taxonomy.find("espresso").depth == 4

    @given(st.lists(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=4),
                    min_size=1, max_size=10))
    def test_paths_always_build_valid_tree(self, paths):
        taxonomy = taxonomy_from_paths(paths)
        # Every node's depth equals its parent's depth + 1.
        for node in taxonomy:
            if node.parent_id is not None:
                assert node.depth == taxonomy.node(node.parent_id).depth + 1
