"""The telemetry layer: spans, metrics, worker merge, reports, overhead.

Covers the contracts the observability PR ships with: span nesting and
exception capture through the thread-local active stack, exact histogram
percentiles on on-bound inputs, the worker→parent span round-trip under
the process executor (including supervisor retries materializing as
error-flagged sibling attempt spans), fault stamps riding back in the
merged tree, report schema stability across render/read round-trips, and
a generous overhead smoke (the strict <2% bar lives in
``benchmarks/bench_parallel_scaling.py``).
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.measures import MeasureConfig
from repro.datasets import TINY_PROFILE, generate_dataset
from repro.faults import FAULTS, FaultRule
from repro.join import PebbleJoin, SupervisorPolicy
from repro.telemetry import (
    PAYLOAD_VERSION,
    Histogram,
    MetricsRegistry,
    Telemetry,
    Tracer,
    current_span,
    read_report,
    render_json,
    render_text,
    stamp_event,
    write_trace_jsonl,
)
from repro.telemetry.spans import reset_stack

THETA = 0.35
TAU = 2


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(TINY_PROFILE, seed=23)


@pytest.fixture(scope="module")
def config(dataset):
    return MeasureConfig.from_codes(
        "TJS", rules=dataset.rules, taxonomy=dataset.taxonomy, q=3
    )


@pytest.fixture(scope="module")
def collection(dataset):
    return dataset.records.head(48)


@pytest.fixture(scope="module")
def serial_triples(config, collection):
    result = PebbleJoin(config, THETA, tau=TAU).join(collection)
    return _triples(result)


def _triples(result):
    return [(p.left_id, p.right_id, p.similarity) for p in result.pairs]


class TestSpans:
    def test_nesting_builds_one_tree(self):
        tracer = Tracer()
        with tracer.span("join", method="au-dp"):
            with tracer.span("filter") as filter_span:
                filter_span.annotate(candidates=3)
            with tracer.span("verify"):
                pass
        assert [root.name for root in tracer.roots] == ["join"]
        join = tracer.roots[0]
        assert [child.name for child in join.children] == ["filter", "verify"]
        assert join.attrs["method"] == "au-dp"
        assert join.children[0].attrs["candidates"] == 3
        assert join.wall_seconds >= join.children[0].wall_seconds
        assert current_span() is None

    def test_exception_marks_error_and_closes_the_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert inner.error and outer.error
        assert inner.attrs["error_type"] == "ValueError"
        assert current_span() is None

    def test_stamp_event_targets_the_innermost_open_span(self):
        tracer = Tracer()
        assert stamp_event("orphan") is False  # no open span: dropped
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert stamp_event("fault-injected", kind="worker_kill")
        inner = tracer.roots[0].children[0]
        assert inner.events == [
            {"name": "fault-injected", "attrs": {"kind": "worker_kill"}}
        ]
        assert tracer.roots[0].events == []

    def test_payload_round_trip_and_adopt_under_open_parent(self):
        worker = Tracer()
        with worker.span("shard", shard=0):
            with worker.span("filter"):
                pass
        payloads = worker.export()

        parent = Tracer()
        with parent.span("pooled-stage"):
            adopted = parent.adopt(payloads, attempt=1)
        stage = parent.roots[0]
        assert [child.name for child in stage.children] == ["shard"]
        assert stage.children[0].attrs == {"shard": 0, "attempt": 1}
        assert adopted[0].children[0].name == "filter"

    def test_disabled_tracer_is_stateless(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything", a=1) as span:
            span.annotate(b=2).add_event("x")
        assert tracer.roots == []
        assert tracer.export() == []
        assert tracer.adopt([{"name": "shard"}]) == []

    def test_reset_stack_detaches_inherited_open_spans(self):
        # Forked workers inherit the parent's open spans through the
        # copied thread-local; reset_stack is their entry-point antidote.
        tracer = Tracer()
        inherited = tracer.span("parent").start()
        reset_stack()
        worker = Tracer()
        with worker.span("shard"):
            pass
        assert [root.name for root in worker.roots] == ["shard"]
        assert inherited.children == []
        inherited.end()


class TestMetrics:
    def test_histogram_percentiles_exact_on_bound_inputs(self):
        histogram = Histogram("t", bounds=(1.0, 2.0, 5.0, 10.0))
        for value in (1.0, 1.0, 2.0, 5.0, 5.0, 5.0, 10.0, 10.0, 10.0, 10.0):
            histogram.observe(value)
        assert histogram.count == 10
        assert histogram.percentile(0.20) == 1.0
        assert histogram.percentile(0.50) == 5.0
        assert histogram.percentile(0.90) == 10.0
        assert histogram.percentile(0.99) == 10.0
        assert histogram.mean == pytest.approx(5.9)
        assert histogram.minimum == 1.0 and histogram.maximum == 10.0

    def test_histogram_overflow_reports_observed_max(self):
        histogram = Histogram("t", bounds=(1.0,))
        histogram.observe(50.0)
        assert histogram.counts[-1] == 1
        assert histogram.percentile(0.99) == 50.0

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("t", bounds=(1.0,)).percentile(0.5) == 0.0

    def test_registry_get_or_create_and_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("x").add(2)
        assert registry.counter("x").value == 2  # same instrument back
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.counter("x").add(-1)
        assert "x" in registry and len(registry) == 1

    def test_merge_snapshot_sums_counters_and_buckets(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("n").add(1)
        right.counter("n").add(2)
        left.histogram("h", bounds=(1.0, 2.0)).observe(1.0)
        right.histogram("h", bounds=(1.0, 2.0)).observe(2.0)
        right.gauge("g").set(7)
        left.merge_snapshot(right.snapshot())
        merged = left.snapshot()
        assert merged["counters"]["n"] == 3
        assert merged["gauges"]["g"] == 7.0
        histogram = merged["histograms"]["h"]
        assert histogram["count"] == 2
        assert histogram["min"] == 1.0 and histogram["max"] == 2.0

    def test_merge_snapshot_rejects_mismatched_bounds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("h", bounds=(1.0, 2.0)).observe(1.0)
        right.histogram("h", bounds=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ValueError, match="bounds differ"):
            left.merge_snapshot(right.snapshot())


class TestProcessMerge:
    def test_worker_spans_merge_into_one_parent_tree(
        self, config, collection, serial_triples
    ):
        telemetry = Telemetry()
        engine = PebbleJoin(config, THETA, tau=TAU, telemetry=telemetry)
        result = engine.join(collection, executor="process", workers=2)
        assert _triples(result) == serial_triples

        assert [root.name for root in telemetry.tracer.roots] == ["join"]
        spans = list(telemetry.tracer.iter_spans())
        names = {span.name for span in spans}
        assert {"join", "pooled-stage", "shard", "filter", "verify"} <= names
        shards = [span for span in spans if span.name == "shard"]
        assert shards, "no worker shard spans came back"
        for shard in shards:
            assert "pid" in shard.attrs and shard.attrs["attempt"] == 0
            assert [child.name for child in shard.children] == [
                "filter",
                "verify",
            ]
            assert "candidates" in shard.children[0].attrs
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["join.calls"] == 1
        assert counters["supervisor.shards"] == len(shards)

    def test_disabled_bundle_records_nothing_and_stays_identical(
        self, config, collection, serial_triples
    ):
        telemetry = Telemetry(enabled=False)
        engine = PebbleJoin(config, THETA, tau=TAU, telemetry=telemetry)
        result = engine.join(collection, executor="process", workers=2)
        assert _triples(result) == serial_triples
        assert telemetry.tracer.roots == []


@pytest.mark.chaos
class TestChaosTelemetry:
    def test_worker_kill_produces_failed_attempt_sibling_spans(
        self, config, collection, serial_triples
    ):
        telemetry = Telemetry()
        engine = PebbleJoin(config, THETA, tau=TAU, telemetry=telemetry)
        with FAULTS.injected(FaultRule("worker_kill", shard=0)):
            result = engine.join(
                collection,
                executor="process",
                workers=2,
                supervision=SupervisorPolicy(backoff_base=0.0),
            )
        assert _triples(result) == serial_triples
        report = result.statistics.execution
        assert report.worker_failures >= 1 and report.retries >= 1

        spans = list(telemetry.tracer.iter_spans())
        failed = [span for span in spans if span.name == "shard-attempt-failed"]
        assert len(failed) == report.retries
        assert all(span.error for span in failed)
        # Failures sit as siblings next to the attempt that succeeded,
        # inside the same pooled stage of the same merged tree.
        stages = [span for span in spans if span.name == "pooled-stage"]
        child_names = {
            child.name for stage in stages for child in stage.children
        }
        assert {"shard", "shard-attempt-failed"} <= child_names
        retried = [
            span
            for span in spans
            if span.name == "shard" and span.attrs.get("attempt", 0) >= 1
        ]
        assert retried, "no successful retry attempt made it into the trace"
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters["supervisor.worker_failures"] == report.worker_failures
        assert counters["supervisor.retries"] == report.retries

    def test_fault_stamp_rides_back_in_the_merged_tree(
        self, config, collection, serial_triples
    ):
        # A delayed worker survives, so its fault stamp ships back with its
        # span tree (a killed worker's stamp dies with it — the parent
        # synthesizes the failure instead, covered above).
        telemetry = Telemetry()
        engine = PebbleJoin(config, THETA, tau=TAU, telemetry=telemetry)
        with FAULTS.injected(
            FaultRule("shard_delay", shard=0, seconds=0.05)
        ):
            result = engine.join(
                collection,
                executor="process",
                workers=2,
                supervision=SupervisorPolicy(backoff_base=0.0),
            )
        assert _triples(result) == serial_triples
        events = [
            event
            for span in telemetry.tracer.iter_spans()
            for event in span.events
        ]
        assert any(
            event["name"] == "fault-injected"
            and event["attrs"].get("kind") == "shard_delay"
            for event in events
        ), events
        counters = telemetry.metrics.snapshot()["counters"]
        assert counters.get("faults.injected", 0) >= 1


class TestReport:
    def _bundle(self) -> Telemetry:
        telemetry = Telemetry()
        with telemetry.span("join", theta=0.5):
            with telemetry.span("filter"):
                stamp_event("cache", hit=True)
        telemetry.metrics.counter("join.calls").add()
        telemetry.metrics.gauge("staleness").set(0.25)
        telemetry.metrics.histogram("t", bounds=(1.0, 2.0)).observe(1.0)
        return telemetry

    def test_report_schema_is_stable(self):
        report = self._bundle().report()
        assert set(report) == {"version", "trace", "metrics"}
        assert report["version"] == PAYLOAD_VERSION
        assert json.loads(render_json(report)) == report
        span = report["trace"][0]
        assert set(span) == {
            "name",
            "wall_seconds",
            "cpu_seconds",
            "error",
            "attrs",
            "events",
            "children",
        }
        metrics = report["metrics"]
        assert set(metrics) == {"counters", "gauges", "histograms"}
        assert set(metrics["histograms"]["t"]) == {
            "count",
            "sum",
            "min",
            "max",
            "mean",
            "p50",
            "p90",
            "p99",
            "bounds",
            "counts",
        }

    def test_jsonl_round_trip_preserves_the_report(self, tmp_path):
        report = self._bundle().report()
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(path, report)
        assert read_report(path) == report

    def test_read_report_rejects_non_reports(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError, match="not a telemetry report"):
            read_report(path)

    def test_render_text_shows_tree_error_and_events(self):
        telemetry = self._bundle()
        with pytest.raises(RuntimeError):
            with telemetry.span("broken"):
                raise RuntimeError("boom")
        text = render_text(telemetry.report())
        assert "- join" in text and "  - filter" in text  # indentation
        assert "* cache" in text
        assert "!ERROR" in text
        assert "join.calls = 1" in text


class TestOverhead:
    def test_default_on_overhead_smoke(self, config, collection):
        """Interleaved best-of-3 serial joins, enabled vs disabled bundle.

        This is a smoke bound only (absolute 20ms or 25% — far above any
        real cost) so CI noise cannot flake it; the strict <2% assertion
        runs with the parallel-scaling benchmark where rounds are longer.
        """
        prepared = PebbleJoin(config, THETA, tau=TAU).prepare(collection)
        PebbleJoin(config, THETA, tau=TAU).join(prepared)  # warm caches
        timings = {"enabled": float("inf"), "disabled": float("inf")}
        for _ in range(3):
            for label, flag in (("enabled", True), ("disabled", False)):
                engine = PebbleJoin(
                    config, THETA, tau=TAU, telemetry=Telemetry(enabled=flag)
                )
                start = time.perf_counter()
                engine.join(prepared)
                elapsed = time.perf_counter() - start
                timings[label] = min(timings[label], elapsed)
        overhead = timings["enabled"] - timings["disabled"]
        assert (
            overhead <= 0.02
            or overhead / max(timings["disabled"], 1e-12) <= 0.25
        ), timings
