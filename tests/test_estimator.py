"""Tests for the τ-recommendation machinery (Section 4)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.estimator import (
    CostModel,
    OnlineStatistics,
    TauRecommender,
    bernoulli_sample,
    generate_sample_series,
    recommend_tau,
    scale_estimate,
    student_t_quantile,
)
from repro.evaluation.experiments import config_for, split_dataset
from repro.join.aufilter import PebbleJoin
from repro.records import RecordCollection


class TestOnlineStatistics:
    def test_matches_direct_computation(self):
        values = [3.0, 7.0, 7.0, 19.0, 2.0]
        stats = OnlineStatistics()
        stats.update_many(values)
        mean = sum(values) / len(values)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.mean == pytest.approx(mean)
        assert stats.variance == pytest.approx(variance)
        assert stats.count == len(values)

    def test_empty_and_single_observation(self):
        stats = OnlineStatistics()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        stats.update(5.0)
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_confidence_interval_contains_mean(self):
        stats = OnlineStatistics()
        stats.update_many([1.0, 2.0, 3.0])
        low, high = stats.confidence_interval(1.036)
        assert low <= stats.mean <= high

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_variance_non_negative(self, values):
        stats = OnlineStatistics()
        stats.update_many(values)
        assert stats.variance >= 0.0

    def test_student_t_quantile_close_to_table(self):
        # 70% two-sided with many degrees of freedom tends to ~1.036.
        assert student_t_quantile(0.7, 200) == pytest.approx(1.036, abs=0.02)
        with pytest.raises(ValueError):
            student_t_quantile(1.5, 10)
        with pytest.raises(ValueError):
            student_t_quantile(0.7, 0)


class TestBernoulliSampling:
    def test_probability_bounds(self):
        collection = RecordCollection.from_strings(["a", "b", "c"])
        with pytest.raises(ValueError):
            bernoulli_sample(collection, 0.0)
        with pytest.raises(ValueError):
            bernoulli_sample(collection, 1.5)

    def test_full_probability_keeps_everything(self):
        collection = RecordCollection.from_strings(["a", "b", "c"])
        sample = bernoulli_sample(collection, 1.0)
        assert len(sample) == 3

    def test_sample_size_statistically_reasonable(self):
        collection = RecordCollection.from_strings([f"r{i}" for i in range(1000)])
        sample = bernoulli_sample(collection, 0.1, random.Random(1))
        assert 50 <= len(sample) <= 200

    def test_generate_sample_series(self):
        collection = RecordCollection.from_strings([f"r{i}" for i in range(50)])
        series = generate_sample_series(collection, 0.2, 5, seed=3)
        assert len(series) == 5
        assert all(sample.probability == 0.2 for sample in series)

    def test_scale_estimate(self):
        assert scale_estimate(10.0, 0.1, 0.1) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            scale_estimate(10.0, 0.0, 0.1)

    def test_estimator_is_unbiased_in_expectation(self):
        # Average of many scaled sample counts should approach the true count.
        collection = RecordCollection.from_strings([f"r{i}" for i in range(400)])
        rng = random.Random(7)
        estimates = []
        for _ in range(60):
            sample = bernoulli_sample(collection, 0.1, rng)
            estimates.append(scale_estimate(len(sample), 1.0, 0.1))
        mean = sum(estimates) / len(estimates)
        assert mean == pytest.approx(400, rel=0.15)


class TestCostModel:
    def test_cost_combines_phases(self):
        model = CostModel(filter_cost=1.0, verify_cost=10.0)
        assert model.cost(100, 5) == pytest.approx(150.0)

    def test_best_tau_picks_lowest_cost(self):
        model = CostModel(filter_cost=1.0, verify_cost=10.0)
        model.observe(1, estimated_processed=100, estimated_candidates=50)   # cost 600
        model.observe(2, estimated_processed=200, estimated_candidates=10)   # cost 300
        model.observe(3, estimated_processed=500, estimated_candidates=5)    # cost 550
        assert model.best_tau() == 2

    def test_estimate_tracks_iterations(self):
        model = CostModel()
        model.observe(1, 10, 1)
        model.observe(1, 20, 3)
        estimate = model.estimate(1)
        assert estimate.iterations == 2
        assert estimate.mean_processed == pytest.approx(15.0)

    def test_confidence_interval_ordering(self):
        model = CostModel()
        model.observe(1, 10, 1)
        model.observe(1, 30, 2)
        low, high = model.estimate(1).confidence_interval(1.036)
        assert low <= model.estimate(1).mean_cost <= high

    def test_invalid_costs(self):
        with pytest.raises(ValueError):
            CostModel(filter_cost=0)

    def test_empty_model(self):
        assert CostModel().best_tau() is None


class TestTauRecommender:
    def _factory(self, dataset, theta):
        config = config_for(dataset)

        def factory(tau: int) -> PebbleJoin:
            return PebbleJoin(config, theta, tau=tau, method="au-heuristic")

        return factory

    def test_recommendation_runs_and_returns_valid_tau(self, tiny_dataset):
        left, right = split_dataset(tiny_dataset, 40, 40)
        recommender = TauRecommender(
            self._factory(tiny_dataset, 0.85),
            tau_universe=(1, 2, 3),
            left_probability=0.3,
            right_probability=0.3,
            burn_in=3,
            max_iterations=8,
            seed=1,
        )
        result = recommender.recommend(left, right)
        assert result.best_tau in (1, 2, 3)
        assert 3 <= result.iterations <= 8
        assert set(result.estimates.keys()) == {1, 2, 3}
        assert result.elapsed_seconds > 0

    def test_estimates_scale_with_sampling_probability(self, tiny_dataset):
        left, right = split_dataset(tiny_dataset, 40, 40)
        recommender = TauRecommender(
            self._factory(tiny_dataset, 0.85),
            tau_universe=(1,),
            left_probability=0.5,
            right_probability=0.5,
            burn_in=4,
            max_iterations=6,
            seed=2,
        )
        result = recommender.recommend(left, right)
        estimate = result.estimates[1]
        # The scaled processed-pair estimate must be on the order of the true
        # full-data filtering workload (not the tiny per-sample count).
        engine = self._factory(tiny_dataset, 0.85)(1)
        true_result = engine.join(left, right)
        assert estimate.mean_processed == pytest.approx(
            true_result.statistics.processed_pairs, rel=1.0
        )

    def test_invalid_configuration(self, tiny_dataset):
        factory = self._factory(tiny_dataset, 0.8)
        with pytest.raises(ValueError):
            TauRecommender(factory, tau_universe=())
        with pytest.raises(ValueError):
            TauRecommender(factory, burn_in=0)
        with pytest.raises(ValueError):
            TauRecommender(factory, burn_in=5, max_iterations=2)

    def test_recommend_tau_wrapper(self, tiny_dataset):
        left, right = split_dataset(tiny_dataset, 30, 30)
        result = recommend_tau(
            left, right, config_for(tiny_dataset), 0.85,
            tau_universe=(1, 2), sample_probability=0.3,
            burn_in=3, max_iterations=6, seed=4,
        )
        assert result.best_tau in (1, 2)
