"""Fixture: pickle-hostile members are fine behind __getstate__, and
unreachable classes are never inspected."""

import threading
import weakref


class GuardedState:
    """Reachable, but owns its wire state via __getstate__."""

    def __init__(self, target):
        self.callback = lambda: target
        self.ref = weakref.ref(target)

    def __getstate__(self):
        return {}


class Unshipped:
    """Not reachable from ShardPlan — lambdas here are nobody's business."""

    def __init__(self):
        self._lock = threading.Lock()
        self._cb = lambda: None


class ShardPlan:
    state: GuardedState
