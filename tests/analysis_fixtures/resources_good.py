"""Fixture: the disciplined shared-memory creation idiom (flat.py's)."""

from multiprocessing import shared_memory

from repro import shm_registry


def create_registered(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        shm.buf[0] = 1
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    shm_registry.register(shm.name)
    return shm


def attach_only(name):
    # Attaching (create absent/False) imposes no registration duty.
    return shared_memory.SharedMemory(name=name)


def span_as_context_manager(tracer, records):
    with tracer.span("filter") as span:
        span.annotate(count=len(records))
        return [record for record in records if record.keep]


def span_with_protected_end(tracer, records):
    span = tracer.span("verify").start()
    try:
        return [record.pair for record in records]
    finally:
        span.end()


def span_delegation(tracer, name):
    # Returning the span hands lifecycle ownership to the caller.
    return tracer.span(name, delegated=True)
