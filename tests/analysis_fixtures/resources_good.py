"""Fixture: the disciplined shared-memory creation idiom (flat.py's)."""

from multiprocessing import shared_memory

from repro import shm_registry


def create_registered(size):
    shm = shared_memory.SharedMemory(create=True, size=size)
    try:
        shm.buf[0] = 1
    except BaseException:
        shm.close()
        shm.unlink()
        raise
    shm_registry.register(shm.name)
    return shm


def attach_only(name):
    # Attaching (create absent/False) imposes no registration duty.
    return shared_memory.SharedMemory(name=name)
