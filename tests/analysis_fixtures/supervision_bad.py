"""Fixture: raw executor submissions in a process-pool module."""

from concurrent.futures import ProcessPoolExecutor


def run_shards(task, spans):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(task, span) for span in spans]  # expect[unsupervised-submit]
        rows = list(pool.map(task, spans))  # expect[unsupervised-submit]
    return futures, rows
