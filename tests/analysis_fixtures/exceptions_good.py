"""Fixture: disciplined exception handling."""


class ShardFailed(RuntimeError):
    """Module-level: picklable across the worker boundary."""


def narrow_and_record(task, log):
    try:
        return task()
    except ValueError as exc:
        log.append(exc)
        return None


def broad_but_handled(task, log):
    # Broad catches are fine when the failure is recorded, not erased.
    try:
        return task()
    except Exception as exc:
        log.append(exc)
        return None


def worker_entry(shard):
    if not shard:
        raise ShardFailed("empty shard")
    return shard
