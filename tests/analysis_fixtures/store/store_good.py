"""Fixture: the atomic temp-file + os.replace store-write idiom."""

import os


def save_payload(path, payload):
    temp = path.with_name(path.name + ".tmp")
    with open(temp, "wb") as handle:
        handle.write(payload)
    os.replace(temp, path)


def load_payload(path):
    # Reads are unrestricted.
    with open(path, "rb") as handle:
        return handle.read()
