"""Fixture: store-package writes that bypass the atomic idiom."""


def save_payload(path, payload):
    with open(path, "wb") as handle:  # expect[non-atomic-write]
        handle.write(payload)


def save_reason(path, reason):
    path.write_text(reason)  # expect[non-atomic-write]
