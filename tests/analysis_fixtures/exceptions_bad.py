"""Fixture: exception-hygiene violations."""


def swallow_everything(task):
    try:
        return task()
    except:  # expect[bare-except]
        return None


def swallow_silently(task):
    try:
        return task()
    except Exception:  # expect[swallowed-exception]
        pass


def worker_entry(shard):
    class ShardFailed(RuntimeError):
        pass

    if not shard:
        raise ShardFailed("empty shard")  # expect[unpicklable-raise]
    return shard
