"""Fixture: worker-shipped classes storing pickle-hostile members.

Expect-markers (trailing comments naming a rule id) declare the exact
finding lines the tests assert against.  This module is parsed by the
lint engine, never imported.
"""

import threading
import weakref


class CallbackState:
    """Reachable from ShardPlan via annotation; no __getstate__."""

    def __init__(self, target):
        self.callback = lambda: target  # expect[pickle-boundary]
        self.ref = weakref.ref(target)  # expect[pickle-boundary]


class LockedState:
    """Reachable via ``self.x = LockedState(...)`` in CallbackState? No —
    reachable from ShardPlan's class-level annotation below."""

    def setup(self, path):
        self._lock = threading.Lock()  # expect[pickle-boundary]
        self._handle = open(path, "rb")  # expect[pickle-boundary]

    def wire(self):
        def local_hook():
            return None

        self._hook = local_hook  # expect[pickle-boundary]


class ShardPlan:
    """The seed: everything its annotations reach crosses the boundary."""

    state: CallbackState
    locked: "LockedState"
