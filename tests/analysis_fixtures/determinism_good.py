"""Fixture: the deterministic spellings of the determinism_bad patterns."""

import random


def pairs_from_overlap(left, right):
    overlap = set(left) & set(right)
    pairs = []
    for token in sorted(overlap):
        pairs.append((token, token))
    return pairs


def keys_in_sorted_order(counts):
    return [key for key in sorted(counts.keys())]


def membership_only(left, right):
    # Iterating a set without leaking its order into output is fine.
    total = 0
    for token in set(left):
        if token in right:
            total += 1
    return total


def sample_one(items, seed):
    return random.Random(seed).choice(items)


def keyed_by_content(cache, record):
    return cache.get(record.record_id)
