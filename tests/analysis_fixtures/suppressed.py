"""Fixture: every violation here carries a ``# repro: ignore[...]``."""

import random


def same_line_suppression(cache, record):
    return cache.get(id(record))  # repro: ignore[id-keyed-container]


def line_above_suppression(items):
    # repro: ignore[unseeded-random]
    return random.choice(items)


def wildcard_suppression(task):
    try:
        return task()
    except:  # repro: ignore[*]
        return None


def multi_rule_suppression(cache, record):
    # repro: ignore[id-keyed-container, unseeded-random]
    return cache.get(id(record)), random.random()
