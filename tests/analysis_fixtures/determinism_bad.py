"""Fixture: hash-order and entropy leaks into output structures."""

import random


def pairs_from_overlap(left, right):
    overlap = set(left) & set(right)
    pairs = []
    for token in overlap:  # expect[unsorted-iteration]
        pairs.append((token, token))
    return pairs


def keys_in_hash_order(counts):
    return [key for key in counts.keys()]  # expect[unsorted-iteration]


def yielded_in_hash_order(items):
    for item in {value for value in items}:  # expect[unsorted-iteration]
        yield item


def counter_in_hash_order(tokens):
    counts = {}
    for token in set(tokens):  # expect[unsorted-iteration]
        counts[token] = counts.get(token, 0) + 1
    return counts


def sample_one(items):
    return random.choice(items)  # expect[unseeded-random]


def fresh_rng():
    return random.Random()  # expect[unseeded-random]


def memo_lookup(cache, record):
    return cache.get(id(record))  # expect[id-keyed-container]


def memo_store(cache, record, value):
    cache[id(record)] = value  # expect[id-keyed-container]
