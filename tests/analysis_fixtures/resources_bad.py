"""Fixture: shared-memory segments escaping the lifecycle discipline."""

from multiprocessing import shared_memory

from repro import shm_registry


def create_without_register(size):
    shm = shared_memory.SharedMemory(create=True, size=size)  # expect[shm-lifecycle]
    try:
        shm.buf[0] = 1
    finally:
        shm.close()
        shm.unlink()
    return shm


def create_without_cleanup(size):
    shm = shared_memory.SharedMemory(create=True, size=size)  # expect[shm-lifecycle]
    shm.buf[0] = 1
    shm_registry.register(shm.name)
    return shm


def span_never_closed(tracer, records):
    span = tracer.span("filter")  # expect[unclosed-span]
    span.start()
    return [record for record in records if record.keep]


def span_end_not_protected(tracer, records):
    span = tracer.span("verify").start()  # expect[unclosed-span]
    pairs = [record.pair for record in records]
    span.end()  # never reached if the comprehension raises
    return pairs
