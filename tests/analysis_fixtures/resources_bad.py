"""Fixture: shared-memory segments escaping the lifecycle discipline."""

from multiprocessing import shared_memory

from repro import shm_registry


def create_without_register(size):
    shm = shared_memory.SharedMemory(create=True, size=size)  # expect[shm-lifecycle]
    try:
        shm.buf[0] = 1
    finally:
        shm.close()
        shm.unlink()
    return shm


def create_without_cleanup(size):
    shm = shared_memory.SharedMemory(create=True, size=size)  # expect[shm-lifecycle]
    shm.buf[0] = 1
    shm_registry.register(shm.name)
    return shm
