"""Tests for q-gram extraction and gram-set similarity measures."""

import pytest
from hypothesis import given, strategies as st

from repro.core.grams import (
    cosine,
    dice,
    gram_frequencies,
    jaccard,
    overlap_coefficient,
    qgram_multiset,
    qgram_set,
    qgrams,
)

WORDS = st.text(alphabet="abcdefghij", min_size=0, max_size=12)


class TestQgrams:
    def test_example2_helsinki(self):
        # Example 2 of the paper: 2-grams of "Helsingki" and "Helsinki".
        assert qgrams("helsingki", 2) == ["he", "el", "ls", "si", "in", "ng", "gk", "ki"]
        assert qgrams("helsinki", 2) == ["he", "el", "ls", "si", "in", "nk", "ki"]

    def test_short_string_returns_whole_string(self):
        assert qgrams("a", 2) == ["a"]

    def test_empty_string(self):
        assert qgrams("", 2) == []

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_multiset_counts_duplicates(self):
        counts = qgram_multiset("aaa", 2)
        assert counts == {"aa": 2}

    @given(WORDS, st.integers(min_value=1, max_value=4))
    def test_gram_count_formula(self, text, q):
        grams = qgrams(text, q)
        if not text:
            assert grams == []
        elif len(text) < q:
            assert grams == [text]
        else:
            assert len(grams) == len(text) - q + 1


class TestJaccard:
    def test_example2_value(self):
        # sim_j(Helsingki, Helsinki) = 6/9 = 2/3 (Example 2).
        assert jaccard("helsingki", "helsinki", 2) == pytest.approx(2 / 3)

    def test_identical_strings(self):
        assert jaccard("coffee", "coffee") == 1.0

    def test_disjoint_strings(self):
        assert jaccard("aaaa", "bbbb") == 0.0

    def test_both_empty(self):
        assert jaccard("", "") == 1.0

    @given(WORDS, WORDS)
    def test_symmetry(self, left, right):
        assert jaccard(left, right) == pytest.approx(jaccard(right, left))

    @given(WORDS, WORDS)
    def test_range(self, left, right):
        assert 0.0 <= jaccard(left, right) <= 1.0

    @given(WORDS)
    def test_self_similarity_is_one(self, text):
        assert jaccard(text, text) == 1.0


class TestOtherGramMeasures:
    @given(WORDS, WORDS)
    def test_dice_range_and_symmetry(self, left, right):
        assert 0.0 <= dice(left, right) <= 1.0
        assert dice(left, right) == pytest.approx(dice(right, left))

    @given(WORDS, WORDS)
    def test_cosine_range(self, left, right):
        assert 0.0 <= cosine(left, right) <= 1.0

    @given(WORDS, WORDS)
    def test_overlap_at_least_jaccard(self, left, right):
        assert overlap_coefficient(left, right) >= jaccard(left, right) - 1e-12

    @given(WORDS, WORDS)
    def test_dice_at_least_jaccard(self, left, right):
        assert dice(left, right) >= jaccard(left, right) - 1e-12


class TestGramFrequencies:
    def test_counts_documents_not_occurrences(self):
        freqs = gram_frequencies(["aaa", "aab"], q=2)
        assert freqs["aa"] == 2  # appears in both strings, once each counted
        assert freqs["ab"] == 1

    def test_empty_corpus(self):
        assert gram_frequencies([]) == {}
