"""Filter-kernel equivalence: numpy ≡ python ≡ legacy dict probe.

The kernel layer of :mod:`repro.join.kernels` promises *bit-identity*: for
any postings/probe pair, every kernel must emit the same candidate pairs,
in the same order and orientation, with the same ``processed`` count, as
the dict-based reference loop it replaced.  These suites sweep the full
semantic surface — all measure configurations, self-join and R×S
orientations, τ saturation, unknown probe keys, empty posting spans — and
pin the serial/process boundary: shards running a *different* kernel than
the parent must still reproduce the serial answer exactly.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from array import array

import pytest

from repro.core.measures import MeasureConfig
from repro.datasets import TINY_PROFILE, generate_dataset
from repro.join import PebbleJoin, UnifiedJoin
from repro.join.aufilter import _probe_candidates
from repro.join.flat import UNKNOWN_KEY, FlatJoinState, FlatPostings
from repro.join.inverted_index import InvertedIndex
from repro.join.kernels import (
    KERNELS,
    numpy_available,
    probe_span,
    probe_span_python,
    resolve_kernel,
)

MEASURE_CODES = ("J", "S", "T", "TJS")
THETA = 0.5
TAU = 2

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy not importable in this environment"
)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(TINY_PROFILE, seed=53)


def _config(dataset, codes: str) -> MeasureConfig:
    return MeasureConfig.from_codes(
        codes, rules=dataset.rules, taxonomy=dataset.taxonomy, q=3
    )


def _signed_sides(dataset, codes, *, self_join, theta=THETA, tau=TAU):
    """Signed (index, probe) lists exactly as the engine would produce."""
    engine = PebbleJoin(_config(dataset, codes), theta, tau=tau)
    left = dataset.records.head(40)
    if self_join:
        order = engine.build_order(left)
        signed = engine.sign_collection(left, order)
        return signed, signed
    # Overlapping ranges: shared keys on both sides plus probe-only keys.
    right = dataset.records.subset(range(20, 60))
    order = engine.build_order(left, right)
    return (
        engine.sign_collection(left, order),
        engine.sign_collection(right, order),
    )


def _dict_reference(
    index_signed,
    probe_signed,
    requirement,
    *,
    probe_is_left,
    exclude_self_pairs,
    postings_ascending,
):
    """The legacy dict walk (inverted index + per-probe counter loop)."""
    index = InvertedIndex.build(index_signed)
    candidates, processed, _ = _probe_candidates(
        index.raw_postings,
        probe_signed,
        requirement,
        probe_is_left=probe_is_left,
        exclude_self_pairs=exclude_self_pairs,
        postings_ascending=postings_ascending,
    )
    return candidates, processed


def _kernel_answers(
    index_signed,
    probe_signed,
    requirement,
    *,
    probe_is_left,
    exclude_self_pairs,
    postings_ascending,
):
    """Every available kernel's ``(candidates, processed)`` answer."""
    state = FlatJoinState.from_signed_sides(
        index_signed, probe_signed, postings_ascending=postings_ascending
    )
    kernels = ["python"] + (["numpy"] if numpy_available() else [])
    return {
        kernel: state.probe_span(
            0,
            state.probe_count,
            requirement,
            probe_is_left=probe_is_left,
            exclude_self_pairs=exclude_self_pairs,
            kernel=kernel,
        )
        for kernel in kernels
    }


class TestKernelEquivalence:
    """Randomized sweeps: every kernel ≡ the legacy dict reference."""

    @pytest.mark.parametrize("codes", MEASURE_CODES)
    def test_self_join_matches_dict_reference(self, dataset, codes):
        index_signed, probe_signed = _signed_sides(dataset, codes, self_join=True)
        rng = random.Random(hash(codes) & 0xFFFF)
        for _ in range(4):
            requirement = rng.choice((1, 2, 3))
            for ascending in (True, False):
                expected = _dict_reference(
                    index_signed,
                    probe_signed,
                    requirement,
                    probe_is_left=False,
                    exclude_self_pairs=True,
                    postings_ascending=ascending,
                )
                answers = _kernel_answers(
                    index_signed,
                    probe_signed,
                    requirement,
                    probe_is_left=False,
                    exclude_self_pairs=True,
                    postings_ascending=ascending,
                )
                for kernel, got in answers.items():
                    assert got == expected, (codes, kernel, requirement, ascending)

    @pytest.mark.parametrize("codes", MEASURE_CODES)
    @pytest.mark.parametrize("probe_is_left", (True, False))
    def test_two_collection_matches_dict_reference(
        self, dataset, codes, probe_is_left
    ):
        index_signed, probe_signed = _signed_sides(dataset, codes, self_join=False)
        for requirement in (1, 2, 4):
            expected = _dict_reference(
                index_signed,
                probe_signed,
                requirement,
                probe_is_left=probe_is_left,
                exclude_self_pairs=False,
                postings_ascending=False,
            )
            answers = _kernel_answers(
                index_signed,
                probe_signed,
                requirement,
                probe_is_left=probe_is_left,
                exclude_self_pairs=False,
                postings_ascending=False,
            )
            for kernel, got in answers.items():
                assert got == expected, (codes, kernel, requirement)

    def test_unknown_probe_keys_act_as_dict_misses(self, dataset):
        """Probe-only keys encode as UNKNOWN_KEY and contribute nothing."""
        index_signed, probe_signed = _signed_sides(dataset, "TJS", self_join=False)
        state = FlatJoinState.from_signed_sides(
            index_signed, probe_signed, postings_ascending=False
        )
        # The disjoint tail of the probe range guarantees unseen keys.
        assert UNKNOWN_KEY in set(state.probe.key_ids)
        expected = _dict_reference(
            index_signed,
            probe_signed,
            2,
            probe_is_left=True,
            exclude_self_pairs=False,
            postings_ascending=False,
        )
        for kernel, got in _kernel_answers(
            index_signed,
            probe_signed,
            2,
            probe_is_left=True,
            exclude_self_pairs=False,
            postings_ascending=False,
        ).items():
            assert got == expected, kernel


class _SyntheticProbe:
    """Duck-typed probe side (kernels read only these four arrays)."""

    def __init__(self, record_ids, key_offsets, key_ids):
        self.record_ids = array("i", record_ids)
        self.key_offsets = array("i", key_offsets)
        self.key_ids = array("i", key_ids)

    def __len__(self):
        return len(self.record_ids)


class TestSyntheticEdgeCases:
    """Hand-built spans pinning saturation, empty postings, and emission."""

    def _postings(self):
        # key 0 -> [5, 5, 5, 7]; key 1 -> [] (empty span); key 2 -> [7, 9]
        return FlatPostings(array("i", [0, 4, 4, 6]), array("i", [5, 5, 5, 7, 7, 9]))

    def _run(self, kernel, requirement, key_ids, **flags):
        probe = _SyntheticProbe([3], [0, len(key_ids)], key_ids)
        return probe_span(
            self._postings(),
            probe,
            0,
            1,
            requirement,
            counts_size=10,
            kernel=kernel,
            **flags,
        )

    @pytest.mark.parametrize(
        "kernel", ["python"] + (["numpy"] if numpy_available() else [])
    )
    def test_saturation_never_affects_processed(self, kernel):
        # Partner 5 is touched three times but emitted once at count == 2;
        # processed counts every touch, including post-saturation ones.
        candidates, processed = self._run(
            kernel,
            2,
            [0, 2],
            probe_is_left=True,
            exclude_self_pairs=False,
            postings_ascending=True,
        )
        assert candidates == [(3, 5), (3, 7)]
        assert processed == 6

    @pytest.mark.parametrize(
        "kernel", ["python"] + (["numpy"] if numpy_available() else [])
    )
    def test_empty_spans_and_unknown_keys_are_skipped(self, kernel):
        candidates, processed = self._run(
            kernel,
            1,
            [1, UNKNOWN_KEY, 1],
            probe_is_left=True,
            exclude_self_pairs=False,
            postings_ascending=True,
        )
        assert candidates == []
        assert processed == 0

    @pytest.mark.parametrize(
        "kernel", ["python"] + (["numpy"] if numpy_available() else [])
    )
    def test_ascending_break_equals_exclusion_mask(self, kernel):
        # Probe 3 plays the right role: partners >= 3 are excluded.  With
        # ascending postings every span truncates before any exclusion is
        # touched, so processed counts nothing here.
        candidates, processed = self._run(
            kernel,
            1,
            [0, 2],
            probe_is_left=False,
            exclude_self_pairs=True,
            postings_ascending=True,
        )
        assert candidates == []
        assert processed == 0

    def test_emission_order_is_first_reach_order(self):
        # Stream order for keys [2, 0, 0] is 7 9 | 5 5 5 7 | 5 5 5 7:
        # partner 5 reaches the requirement on its second touch, before
        # partner 7's second touch arrives — so 5 is emitted first, then 7,
        # by every kernel.
        for kernel in ["python"] + (["numpy"] if numpy_available() else []):
            candidates, processed = self._run(
                kernel,
                2,
                [2, 0, 0],
                probe_is_left=True,
                exclude_self_pairs=False,
                postings_ascending=True,
            )
            assert candidates == [(3, 5), (3, 7)]
            assert processed == 10


class TestKernelSelection:
    def test_kernel_names_are_validated_eagerly(self, dataset):
        assert set(KERNELS) == {"auto", "numpy", "python"}
        assert resolve_kernel("python") == "python"
        with pytest.raises(ValueError, match="kernel"):
            resolve_kernel("vectorized")
        config = _config(dataset, "J")
        with pytest.raises(ValueError, match="kernel"):
            PebbleJoin(config, THETA, tau=TAU, kernel="bogus")
        with pytest.raises(ValueError, match="kernel"):
            UnifiedJoin(
                rules=dataset.rules,
                taxonomy=dataset.taxonomy,
                theta=THETA,
                tau=TAU,
                kernel="bogus",
            )

    @needs_numpy
    def test_auto_resolves_to_numpy_when_available(self):
        assert resolve_kernel("auto") == "numpy"
        assert resolve_kernel("numpy") == "numpy"

    def test_no_numpy_env_masks_the_kernel(self):
        """REPRO_NO_NUMPY=1 must force the pure-python fallback."""
        code = (
            "from repro.join import kernels\n"
            "assert kernels._np is None\n"
            "assert not kernels.numpy_available()\n"
            "assert kernels.resolve_kernel('auto') == 'python'\n"
            "try:\n"
            "    kernels.resolve_kernel('numpy')\n"
            "except ValueError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('explicit numpy must fail without numpy')\n"
        )
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        src_dir = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.abspath(src_dir), env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        subprocess.run([sys.executable, "-c", code], check=True, env=env)


class TestCrossBoundaryIdentity:
    def test_serial_and_process_mixed_kernels_agree(self, dataset):
        """A numpy parent and python workers (and vice versa) agree exactly."""
        kwargs = dict(
            rules=dataset.rules,
            taxonomy=dataset.taxonomy,
            theta=THETA,
            tau=TAU,
        )
        collection = dataset.records.head(30)
        reference = UnifiedJoin(kernel="python", **kwargs).join(collection)
        triples = [
            (pair.left_id, pair.right_id, pair.similarity)
            for pair in reference.pairs
        ]
        for kernel in ("auto", "python") + (("numpy",) if numpy_available() else ()):
            pooled = UnifiedJoin(kernel=kernel, **kwargs).join(
                collection, executor="process", workers=2
            )
            got = [
                (pair.left_id, pair.right_id, pair.similarity)
                for pair in pooled.pairs
            ]
            assert got == triples, kernel

    def test_flat_probe_span_alias_is_the_python_kernel(self):
        from repro.join.flat import flat_probe_span

        assert flat_probe_span is probe_span_python
