"""Shared fixtures: the Figure-1 running example and small synthetic data."""

from __future__ import annotations

import pytest

from repro import SynonymRuleSet, Taxonomy
from repro.core.measures import MeasureConfig
from repro.datasets import TINY_PROFILE, generate_dataset, generate_ground_truth
from repro.records import RecordCollection


@pytest.fixture(scope="session")
def figure1_rules() -> SynonymRuleSet:
    """The synonym rules of the paper's Figure 1."""
    return SynonymRuleSet.from_pairs(
        [("coffee shop", "cafe"), ("cake", "gateau"), ("ny", "new york")]
    )


@pytest.fixture(scope="session")
def figure1_taxonomy() -> Taxonomy:
    """The taxonomy of the paper's Figure 1 (Wikipedia → food → coffee → ...)."""
    taxonomy = Taxonomy("Wikipedia")
    food = taxonomy.add_node("food", taxonomy.root)
    coffee = taxonomy.add_node("coffee", food)
    drinks = taxonomy.add_node("coffee drinks", coffee)
    taxonomy.add_node("espresso", drinks)
    taxonomy.add_node("latte", drinks)
    cake = taxonomy.add_node("cake", food)
    taxonomy.add_node("apple cake", cake)
    return taxonomy


@pytest.fixture(scope="session")
def figure1_config(figure1_rules, figure1_taxonomy) -> MeasureConfig:
    """Full TJS measure configuration over the Figure-1 knowledge sources."""
    return MeasureConfig.from_codes("TJS", rules=figure1_rules, taxonomy=figure1_taxonomy)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small synthetic dataset shared by join and estimator tests."""
    return generate_dataset(TINY_PROFILE, seed=101)


@pytest.fixture(scope="session")
def tiny_truth(tiny_dataset):
    """Ground-truth pairs over the tiny dataset."""
    return generate_ground_truth(tiny_dataset, positive_pairs=25, negative_pairs=25, seed=5)


@pytest.fixture(scope="session")
def poi_collections(figure1_rules, figure1_taxonomy):
    """Two tiny POI collections used by end-to-end join tests."""
    left = RecordCollection.from_strings(
        [
            "coffee shop latte Helsingki",
            "pizza place new york",
            "grand hotel paris",
            "apple cake bakery",
        ]
    )
    right = RecordCollection.from_strings(
        [
            "espresso cafe Helsinki",
            "pizza place ny",
            "louvre museum paris",
            "gateau bakery",
        ]
    )
    return left, right
