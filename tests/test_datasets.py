"""Tests for synthetic dataset, taxonomy, synonym, and ground-truth generators."""

import pytest

from repro.datasets import (
    MED_PROFILE,
    TINY_PROFILE,
    generate_dataset,
    generate_ground_truth,
    generate_synonym_rules,
    generate_taxonomy,
    generate_vocabulary,
    make_abbreviation,
    make_typo,
)
import random


class TestVocabulary:
    def test_size_and_uniqueness(self):
        words = generate_vocabulary(100, seed=1)
        assert len(words) == 100
        assert len(set(words)) == 100

    def test_deterministic_with_seed(self):
        assert generate_vocabulary(50, seed=7) == generate_vocabulary(50, seed=7)

    def test_typo_changes_word(self):
        rng = random.Random(3)
        word = "espresso"
        typos = {make_typo(word, rng) for _ in range(20)}
        assert any(t != word for t in typos)

    def test_abbreviation_of_phrase(self):
        rng = random.Random(3)
        assert make_abbreviation(("new", "york"), rng) == "ny"

    def test_zero_size(self):
        assert generate_vocabulary(0) == []


class TestTaxonomyGeneration:
    def test_node_count_matches_profile(self):
        taxonomy = generate_taxonomy(TINY_PROFILE, seed=11)
        assert len(taxonomy) == TINY_PROFILE.taxonomy_nodes

    def test_depths_within_profile_bounds(self):
        taxonomy = generate_taxonomy(TINY_PROFILE, seed=11)
        _, _, max_depth = TINY_PROFILE.taxonomy_depth
        # +1 because the generated root counts as depth 1.
        assert taxonomy.max_depth <= max_depth + 1

    def test_reproducible(self):
        first = generate_taxonomy(TINY_PROFILE, seed=5)
        second = generate_taxonomy(TINY_PROFILE, seed=5)
        assert [n.label for n in first] == [n.label for n in second]

    def test_override_node_count(self):
        taxonomy = generate_taxonomy(TINY_PROFILE, seed=2, node_count=30)
        assert len(taxonomy) == 30


class TestSynonymGeneration:
    def test_rule_count(self):
        taxonomy = generate_taxonomy(TINY_PROFILE, seed=3)
        rules = generate_synonym_rules(TINY_PROFILE, taxonomy=taxonomy, seed=3)
        assert len(rules) == TINY_PROFILE.synonym_rules

    def test_closeness_range_respected(self):
        rules = generate_synonym_rules(TINY_PROFILE, seed=4, closeness_range=(0.9, 1.0))
        assert all(0.9 <= rule.closeness <= 1.0 for rule in rules)

    def test_some_rules_alias_taxonomy_labels(self):
        taxonomy = generate_taxonomy(TINY_PROFILE, seed=5)
        rules = generate_synonym_rules(TINY_PROFILE, taxonomy=taxonomy, seed=5)
        labels = {node.tokens for node in taxonomy if not node.is_root}
        assert any(rule.rhs in labels for rule in rules)


class TestDatasetGeneration:
    def test_dataset_shape(self, tiny_dataset):
        assert len(tiny_dataset.records) == TINY_PROFILE.record_count
        assert len(tiny_dataset.taxonomy) == TINY_PROFILE.taxonomy_nodes
        assert len(tiny_dataset.rules) == TINY_PROFILE.synonym_rules

    def test_records_embed_taxonomy_labels(self, tiny_dataset):
        label_hits = 0
        for record in list(tiny_dataset.records)[:50]:
            if tiny_dataset.taxonomy.matching_spans(record.tokens):
                label_hits += 1
        assert label_hits > 10

    def test_statistics_contains_table_fields(self, tiny_dataset):
        stats = tiny_dataset.statistics()
        for key in ("records", "avg_tokens", "taxonomy_nodes", "synonym_rules", "taxonomy_avg_fanout"):
            assert key in stats

    def test_subset(self, tiny_dataset):
        subset = tiny_dataset.subset(10)
        assert len(subset.records) == 10
        assert subset.taxonomy is tiny_dataset.taxonomy

    def test_reproducible(self):
        first = generate_dataset(TINY_PROFILE, seed=42)
        second = generate_dataset(TINY_PROFILE, seed=42)
        assert first.records.texts() == second.records.texts()


class TestGroundTruth:
    def test_counts(self, tiny_truth):
        assert len(tiny_truth.positives()) == 25
        assert len(tiny_truth.negatives()) == 25

    def test_positive_pairs_have_relations(self, tiny_truth):
        for pair in tiny_truth.positives():
            assert pair.relations
            assert set(pair.relations) <= {"typo", "synonym", "taxonomy"}

    def test_negatives_have_no_relations(self, tiny_truth):
        for pair in tiny_truth.negatives():
            assert pair.relations == ()

    def test_positive_pairs_differ_from_base(self, tiny_truth):
        for pair in tiny_truth.positives():
            assert pair.left.tokens != pair.right.tokens

    def test_with_relation_filter(self, tiny_truth):
        typo_pairs = tiny_truth.with_relation("typo")
        assert all("typo" in pair.relations for pair in typo_pairs)

    def test_requires_records(self):
        dataset = generate_dataset(TINY_PROFILE, seed=1)
        empty = dataset.subset(0)
        with pytest.raises(ValueError):
            generate_ground_truth(empty, positive_pairs=1, negative_pairs=1)
