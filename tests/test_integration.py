"""End-to-end integration tests across the whole stack.

These tests exercise the full pipeline the way a downstream user would:
generate data, build knowledge sources, join, verify, and evaluate — and pin
the cross-cutting invariants that individual unit tests cannot see.
"""

import pytest

from repro.core.approximation import approximate_usim
from repro.datasets import TINY_PROFILE, generate_dataset, generate_ground_truth
from repro.evaluation.experiments import config_for, split_dataset
from repro.evaluation.metrics import classify_pairs
from repro.join import PebbleJoin, SignatureMethod, UnifiedJoin


class TestEndToEndJoinPipeline:
    def test_all_filters_agree_on_results(self, tiny_dataset):
        """U-Filter, AU-heuristic, and AU-DP must verify the same pair set."""
        config = config_for(tiny_dataset)
        left, right = split_dataset(tiny_dataset, 40, 40)
        results = {}
        for method in SignatureMethod.ALL:
            tau = 1 if method == SignatureMethod.U_FILTER else 2
            engine = PebbleJoin(config, 0.8, tau=tau, method=method)
            results[method] = engine.join(left, right).pair_ids()
        assert results[SignatureMethod.U_FILTER] == results[SignatureMethod.AU_HEURISTIC]
        assert results[SignatureMethod.U_FILTER] == results[SignatureMethod.AU_DP]

    def test_join_results_respect_threshold_and_symmetric_measures(self, tiny_dataset):
        config = config_for(tiny_dataset)
        left, right = split_dataset(tiny_dataset, 40, 40)
        result = PebbleJoin(config, 0.85, tau=2).join(left, right)
        for pair in result.pairs:
            value = approximate_usim(
                left[pair.left_id].tokens, right[pair.right_id].tokens, config
            ).value
            assert value >= 0.85 - 1e-9

    def test_ground_truth_pairs_are_recoverable_by_unified_join(self, tiny_dataset, tiny_truth):
        """Most injected similar pairs score above a moderate threshold."""
        config = config_for(tiny_dataset)

        def similarity(left, right):
            return approximate_usim(left.tokens, right.tokens, config).value

        pr = classify_pairs(tiny_truth, similarity, 0.6)
        assert pr.recall >= 0.6
        assert pr.precision >= 0.8

    def test_unified_join_beats_single_measures_on_recall(self, tiny_dataset, tiny_truth):
        theta = 0.7
        recalls = {}
        for codes in ("J", "T", "S", "TJS"):
            config = config_for(tiny_dataset, codes)

            def similarity(left, right, _config=config):
                return approximate_usim(left.tokens, right.tokens, _config).value

            recalls[codes] = classify_pairs(tiny_truth, similarity, theta).recall
        assert recalls["TJS"] >= max(recalls["J"], recalls["T"], recalls["S"])

    def test_full_facade_with_generated_knowledge(self):
        dataset = generate_dataset(TINY_PROFILE, count=60, seed=77)
        join = UnifiedJoin(
            rules=dataset.rules, taxonomy=dataset.taxonomy, theta=0.9, tau=2, method="au-dp"
        )
        result = join.self_join(dataset.records)
        # Self-join output is deduplicated and ordered.
        for pair in result.pairs:
            assert pair.left_id < pair.right_id
            assert pair.similarity >= 0.9 - 1e-9
