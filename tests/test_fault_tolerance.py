"""Chaos suite: deterministic fault injection against the supervised driver.

Every test here breaks the parallel execution substrate on purpose —
killed workers, hung shards, vanished shared-memory segments, corrupted
store artifacts, a crashed parent — and asserts the one contract that
matters: the recovered run is **bit-identical** to the serial engine, and
the damage is visible in the :class:`~repro.join.supervision.ExecutionReport`
rather than in the answer.  Faults are armed through :mod:`repro.faults`,
so every failure fires at an exactly specified shard/attempt and the tests
are reproducible, not flaky.

Warm-pool worker-kill tests create their pool *inside* the armed context:
pool workers inherit the environment at fork, so a pool forked before
arming would never see the fault spec.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import shm_registry
from repro.core.measures import MeasureConfig
from repro.datasets import TINY_PROFILE, generate_dataset
from repro.faults import FAULTS, FaultRule, flip_bytes
from repro.join import (
    PebbleJoin,
    ShardTransportError,
    SupervisorPolicy,
    WarmJoinPool,
)
from repro.join.parallel import _attach_plan, _export_plan_payload, build_shard_plan
from repro.join.prepared import PreparedCollection
from repro.search import ConcurrentMutationError, SimilarityIndex
from repro.store import PreparedStore

pytestmark = pytest.mark.chaos

THETA = 0.55
TAU = 2

#: Zero-backoff everywhere: the recovery *logic* is under test, not the
#: pacing, and chaos tests should not sleep.
FAST = dict(backoff_base=0.0)


@pytest.fixture(scope="module")
def dataset():
    return generate_dataset(TINY_PROFILE, seed=23)


@pytest.fixture(scope="module")
def config(dataset):
    return MeasureConfig.from_codes(
        "TJS", rules=dataset.rules, taxonomy=dataset.taxonomy, q=3
    )


@pytest.fixture(scope="module")
def collection(dataset):
    return dataset.records.head(48)


@pytest.fixture(scope="module")
def serial(config, collection):
    return PebbleJoin(config, THETA, tau=TAU).join(collection)


def _triples(pairs):
    return [(pair.left_id, pair.right_id, pair.similarity) for pair in pairs]


def _counters(stats):
    return {name: getattr(stats, name) for name in stats._COUNTERS}


def _assert_identical(result, serial):
    assert _triples(result.pairs) == _triples(serial.pairs)
    assert _counters(result.statistics.verification) == _counters(
        serial.statistics.verification
    )


def _join(config, collection, **kwargs):
    return PebbleJoin(config, THETA, tau=TAU).join(
        collection, executor="process", workers=2, **kwargs
    )


class TestSupervisedRecovery:
    def test_clean_run_reports_no_faults(self, config, collection, serial):
        result = _join(config, collection, supervision=SupervisorPolicy(**FAST))
        _assert_identical(result, serial)
        report = result.statistics.execution
        assert report is not None
        assert not report.faulted
        assert report.shards == len(report.attempts) > 0
        assert all(attempt == 1 for attempt in report.attempts)

    def test_worker_kill_recovers_bit_identical(self, config, collection, serial):
        with FAULTS.injected(FaultRule("worker_kill", shard=0)):
            result = _join(config, collection, supervision=SupervisorPolicy(**FAST))
        _assert_identical(result, serial)
        report = result.statistics.execution
        assert report.faulted
        assert report.worker_failures >= 1
        assert report.respawns >= 1
        assert report.errors

    def test_worker_kill_every_shard_recovers(self, config, collection, serial):
        # Every first-attempt dispatch dies; retried shards survive.  The
        # supervisor may exhaust its respawns and finish serially — the
        # answer must not care.
        with FAULTS.injected(FaultRule("worker_kill")):
            result = _join(
                config,
                collection,
                supervision=SupervisorPolicy(max_respawns=4, **FAST),
            )
        _assert_identical(result, serial)
        assert result.statistics.execution.worker_failures >= 1

    def test_worker_kill_worker_signed_plan(self, config, collection, serial):
        with FAULTS.injected(FaultRule("worker_kill", shard=0)):
            result = _join(
                config,
                collection,
                sign_in_workers=True,
                supervision=SupervisorPolicy(**FAST),
            )
        _assert_identical(result, serial)
        assert result.statistics.execution.faulted

    def test_shard_timeout_recovers_bit_identical(self, config, collection, serial):
        policy = SupervisorPolicy(shard_timeout=0.15, **FAST)
        with FAULTS.injected(FaultRule("shard_delay", shard=0, seconds=1.5)):
            result = _join(config, collection, supervision=policy)
        _assert_identical(result, serial)
        report = result.statistics.execution
        assert report.timeouts >= 1
        assert report.respawns >= 1

    def test_shm_drop_cold_pool_recovers(self, config, collection, serial):
        # The first published segment vanishes before any worker attaches;
        # the respawn re-exports a fresh segment and the join completes.
        with FAULTS.injected(FaultRule("shm_drop")):
            result = _join(
                config,
                collection,
                payload_mode="shm",
                supervision=SupervisorPolicy(**FAST),
            )
        _assert_identical(result, serial)
        assert result.statistics.execution.faulted

    def test_shm_drop_warm_pool_is_transport_failure(
        self, config, collection, serial
    ):
        # Warm workers report the typed transport error; recovery republishes
        # under a fresh name without restarting the (healthy) executor.
        with WarmJoinPool(workers=2) as pool, FAULTS.injected(
            FaultRule("shm_drop")
        ):
            result = _join(
                config, collection, pool=pool, supervision=SupervisorPolicy(**FAST)
            )
            _assert_identical(result, serial)
            report = result.statistics.execution
            assert report.transport_failures >= 1
            assert pool.respawns == 0

    def test_retry_exhaustion_falls_back_to_serial(
        self, config, collection, serial
    ):
        # Shard 0 dies on *every* pool attempt; after 1+max_retries
        # dispatches it must run serially in the parent (where the armed
        # fault never fires) and the join still matches.
        policy = SupervisorPolicy(max_retries=1, max_respawns=8, **FAST)
        with FAULTS.injected(FaultRule("worker_kill", shard=0, max_attempt=99)):
            result = _join(config, collection, supervision=policy)
        _assert_identical(result, serial)
        report = result.statistics.execution
        assert report.fallback_shards >= 1

    def test_serial_fallback_disabled_raises(self, config, collection):
        policy = SupervisorPolicy(
            max_retries=0, max_respawns=0, serial_fallback=False, **FAST
        )
        with FAULTS.injected(FaultRule("worker_kill", shard=0, max_attempt=99)):
            with pytest.raises(RuntimeError, match="fallback"):
                _join(config, collection, supervision=policy)

    def test_streamed_batches_recover(self, config, collection, serial):
        engine = PebbleJoin(config, THETA, tau=TAU)
        serial_batches = list(engine.join_batches(collection))
        with FAULTS.injected(FaultRule("worker_kill", shard=0)):
            batches = list(
                PebbleJoin(config, THETA, tau=TAU).join_batches(
                    collection,
                    executor="process",
                    workers=2,
                    supervision=SupervisorPolicy(**FAST),
                )
            )
        flat = [pair for batch in batches for pair in batch.pairs]
        flat_serial = [pair for batch in serial_batches for pair in batch.pairs]
        assert _triples(flat) == _triples(flat_serial)
        assert batches[-1].execution is not None
        assert batches[-1].execution.faulted


class TestTransportError:
    def test_vanished_segment_raises_typed_error(self, config, collection):
        plan = build_shard_plan(PebbleJoin(config, THETA, tau=TAU), collection)
        payload = _export_plan_payload(plan)
        name = payload.name
        payload.release()
        with pytest.raises(ShardTransportError, match="gone"):
            _attach_plan(name)


class TestWarmPoolSelfHealing:
    def test_close_is_idempotent_and_never_raises(self):
        pool = WarmJoinPool(workers=1)
        pool.close()
        pool.close()  # second close must be a no-op
        with pytest.raises(RuntimeError):
            pool.respawn()

    def test_close_after_broken_executor(self, config, collection):
        pool = WarmJoinPool(workers=2)
        try:
            with FAULTS.injected(FaultRule("worker_kill", shard=0)):
                result = _join(
                    config, collection, pool=pool, supervision=SupervisorPolicy(**FAST)
                )
            assert result.statistics.execution.worker_failures >= 1
            assert pool.respawns >= 1
        finally:
            pool.close()  # must not re-raise the stale BrokenProcessPool
        pool.close()

    def test_session_rebuilds_dead_executor(self, config, collection, serial):
        with WarmJoinPool(workers=2) as pool:
            with FAULTS.injected(FaultRule("worker_kill", shard=0)):
                _join(
                    config, collection, pool=pool, supervision=SupervisorPolicy(**FAST)
                )
            respawns = pool.respawns
            assert respawns >= 1
            # The replacement workers were forked while the fault was armed
            # and inherited its environment; re-fork them clean before
            # asserting a fault-free run.
            pool.respawn()
            clean = _join(
                config, collection, pool=pool, supervision=SupervisorPolicy(**FAST)
            )
            _assert_identical(clean, serial)
            assert not clean.statistics.execution.faulted
            assert pool.respawns == respawns + 1


class TestSupervisedQueryBatch:
    def test_worker_kill_query_batch_bit_identical(self, config, collection):
        probes = [record.text for record in list(collection)[:12]]
        with SimilarityIndex(collection, config, theta=THETA, tau=TAU) as index:
            reference = index.query_batch(probes)
        with FAULTS.injected(FaultRule("worker_kill", shard=0)):
            with SimilarityIndex(collection, config, theta=THETA, tau=TAU) as index:
                hurt = index.query_batch(
                    probes,
                    executor="process",
                    workers=2,
                    supervision=SupervisorPolicy(**FAST),
                )
        assert _triples(hurt.pairs) == _triples(reference.pairs)
        assert hurt.execution is not None
        assert hurt.execution.faulted
        assert reference.execution is None  # serial path carries no report

    def test_supervision_requires_process_executor(self, config, collection):
        with SimilarityIndex(collection, config, theta=THETA, tau=TAU) as index:
            with pytest.raises(ValueError, match="process"):
                index.query_batch(["anything"], supervision=SupervisorPolicy())


class TestConcurrentMutationGuard:
    def test_overlapping_mutation_raises(self, config, collection):
        index = SimilarityIndex(collection, config, theta=THETA, tau=TAU)
        with index._mutating():
            with pytest.raises(ConcurrentMutationError):
                index.add(["overlapping add"])
            with pytest.raises(ConcurrentMutationError):
                index.remove([0])
            with pytest.raises(ConcurrentMutationError):
                index.rebuild()
        # Guard released: the same mutations now succeed.
        (new_id,) = index.add(["overlapping add"])
        index.remove([new_id])

    def test_mutation_during_query_iteration_raises(self, config, collection):
        index = SimilarityIndex(collection, config, theta=THETA, tau=TAU)

        def treacherous_probes():
            yield "first probe"
            index.add(["mutated mid-query"])  # mutates while a query runs
            yield "second probe"

        with pytest.raises(ConcurrentMutationError):
            index.query_batch(treacherous_probes())

    def test_guard_survives_pickle(self, config, collection):
        import pickle

        index = SimilarityIndex(collection, config, theta=THETA, tau=TAU)
        clone = pickle.loads(pickle.dumps(index))
        clone.add(["post-pickle add"])  # fresh lock, mutations work
        with clone._mutating():
            with pytest.raises(ConcurrentMutationError):
                clone.add(["overlap"])


class TestStoreQuarantine:
    def test_corrupt_header_is_quarantined(self, tmp_path, config, collection):
        store = PreparedStore(tmp_path / "store")
        prepared = PreparedCollection.prepare(collection, config)
        path = store.save(prepared)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.load(collection, config) is None
        assert not path.exists()
        quarantined = store.quarantine_artifacts()
        assert [entry.name for entry in quarantined] == [path.name]
        reason = quarantined[0].with_name(quarantined[0].name + ".reason")
        assert "header" in reason.read_text()
        # The quarantined artifact no longer counts as a stored artifact.
        assert store.artifacts() == []
        # A clean re-save recovers the slot.
        store.save(prepared)
        assert store.load(collection, config) is not None

    def test_store_corrupt_fault_round_trip(self, tmp_path, config, collection):
        store = PreparedStore(tmp_path / "store")
        prepared = PreparedCollection.prepare(collection, config)
        with FAULTS.injected(FaultRule("store_corrupt", seed=3, flips=4096)):
            store.save(prepared)
        assert store.load(collection, config) is None
        assert len(store.quarantine_artifacts()) == 1
        assert store.quarantined  # (path, reason) recorded in-process

    def test_corrupt_index_snapshot_is_quarantined(
        self, tmp_path, config, collection
    ):
        store = PreparedStore(tmp_path / "store")
        index = SimilarityIndex(collection, config, theta=THETA, tau=TAU)
        path = index.snapshot(store)
        flip_bytes(path, seed=7, flips=4096)
        fingerprint = index.content_fingerprint()
        assert store.load_index(fingerprint) is None
        assert len(store.quarantine_artifacts()) == 1
        with pytest.raises(LookupError):
            SimilarityIndex.load(store, fingerprint)


_CRASHING_CHILD = """
import os, sys
from multiprocessing import resource_tracker, shared_memory

sys.path.insert(0, {src!r})
from repro import shm_registry

segment = shared_memory.SharedMemory(create=True, size=128)
# The join layer deregisters its segments from the stdlib tracker (the
# parent owns the lifecycle); mirror that so the crash leaves a genuine
# orphan for the janitor rather than tracker-reaped garbage.
resource_tracker.unregister(segment._name, "shared_memory")
shm_registry.register(segment.name)
print(segment.name, flush=True)
os._exit(1)  # simulated crash: no finally, no atexit
"""


class TestShmJanitor:
    def test_parent_crash_leaves_no_orphans(self, tmp_path, monkeypatch):
        if not Path("/dev/shm").is_dir():
            pytest.skip("needs a /dev/shm tmpfs")
        registry = tmp_path / "registry"
        monkeypatch.setenv(shm_registry.ENV_VAR, str(registry))
        src = str(Path(__file__).resolve().parent.parent / "src")
        script = _CRASHING_CHILD.format(src=src)
        env = dict(os.environ)
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            check=False,
        )
        assert completed.returncode == 1, completed.stderr
        name = completed.stdout.strip()
        assert name
        # The crash orphaned the segment and left its registry entry.
        assert (Path("/dev/shm") / name).exists()
        assert any(
            entry["name"] == name for entry in shm_registry.registered_segments()
        )
        # The janitor sweep (what share_payload runs at startup) reaps it.
        removed = shm_registry.sweep()
        assert name in removed
        assert not (Path("/dev/shm") / name).exists()
        assert shm_registry.registered_segments() == []

    def test_sweep_spares_live_owners(self, tmp_path, monkeypatch):
        registry = tmp_path / "registry"
        monkeypatch.setenv(shm_registry.ENV_VAR, str(registry))
        registry.mkdir()
        (registry / "still-owned.json").write_text(
            json.dumps({"name": "still-owned", "pid": os.getpid(), "created": 0})
        )
        assert shm_registry.sweep() == []
        assert len(shm_registry.registered_segments()) == 1

    def test_join_registers_and_releases_segments(
        self, tmp_path, monkeypatch, config, collection
    ):
        registry = tmp_path / "registry"
        monkeypatch.setenv(shm_registry.ENV_VAR, str(registry))
        plan = build_shard_plan(PebbleJoin(config, THETA, tau=TAU), collection)
        payload = _export_plan_payload(plan)
        try:
            assert any(
                entry["name"] == payload.name
                for entry in shm_registry.registered_segments()
            )
        finally:
            payload.release()
        assert shm_registry.registered_segments() == []
